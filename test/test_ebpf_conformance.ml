(* Conformance vectors for the eBPF execution engines, in the style of
   the bpf_conformance project: each vector is a tiny program with a
   pinned expected outcome (a final r0 value or a fault), and every
   vector is asserted against all three engines — interpreter,
   closure-threaded, block-compiled. The table concentrates on the
   corners where implementations historically disagree: 32-bit
   zero-extension, unsigned div/mod by zero and by -1, shift-amount
   masking, byte swaps, slot-relative jump offsets and stack memory
   widths. *)

open Ebpf
module I = Insn

type expect = V of int64 | F

let i n = I.Imm (Int32.of_int n)
let a64 op d s = I.Alu (I.W64bit, op, d, s)
let a32 op d s = I.Alu (I.W32bit, op, d, s)
let mvi d n = a64 I.Mov d (i n)
let x = I.Exit

(* Helper 1 sums its five argument registers — enough to observe both
   argument marshalling and the result landing in r0. *)
let helpers =
  [
    ( 1,
      fun _ (a : int64 array) ->
        Array.fold_left Int64.add 0L (Array.sub a 0 5) );
  ]

let vectors : (string * I.t list * expect) list =
  [
    (* --- 64-bit ALU ------------------------------------------------ *)
    ( "alu64/add-wraps",
      [ I.Lddw (R0, Int64.max_int); a64 Add R0 (i 1); x ],
      V Int64.min_int );
    ("alu64/sub-wraps", [ mvi R0 0; a64 Sub R0 (i 1); x ], V (-1L));
    ( "alu64/mul-wraps",
      [ I.Lddw (R0, Int64.min_int); a64 Mul R0 (i 2); x ],
      V 0L );
    ("alu64/mul-neg-neg", [ mvi R0 (-1); a64 Mul R0 (i (-1)); x ], V 1L);
    ( "alu64/div-is-unsigned",
      [ mvi R0 (-1); a64 Div R0 (i 2); x ],
      V Int64.max_int );
    ("alu64/div-by-minus-one", [ mvi R0 5; a64 Div R0 (i (-1)); x ], V 0L);
    ("alu64/mod-by-minus-one", [ mvi R0 5; a64 Mod R0 (i (-1)); x ], V 5L);
    ( "alu64/min-div-minus-one",
      [ I.Lddw (R0, Int64.min_int); a64 Div R0 (i (-1)); x ],
      V 0L );
    ( "alu64/min-mod-minus-one",
      [ I.Lddw (R0, Int64.min_int); a64 Mod R0 (i (-1)); x ],
      V Int64.min_int );
    ("alu64/div-by-zero-imm", [ mvi R0 5; a64 Div R0 (i 0); x ], F);
    ( "alu64/div-by-zero-reg",
      [ mvi R0 5; mvi R1 0; a64 Div R0 (Reg R1); x ],
      F );
    ( "alu64/mod-by-zero-reg",
      [ mvi R0 5; mvi R1 0; a64 Mod R0 (Reg R1); x ],
      F );
    ( "alu64/lsh-64-is-masked",
      [ mvi R0 5; mvi R1 64; a64 Lsh R0 (Reg R1); x ],
      V 5L );
    ("alu64/lsh-63", [ mvi R0 1; a64 Lsh R0 (i 63); x ], V Int64.min_int);
    ( "alu64/rsh-is-logical",
      [ mvi R0 (-1); a64 Rsh R0 (i 1); x ],
      V Int64.max_int );
    ("alu64/arsh-keeps-sign", [ mvi R0 (-8); a64 Arsh R0 (i 1); x ], V (-4L));
    ( "alu64/arsh-65-is-masked",
      [ mvi R0 (-8); mvi R1 65; a64 Arsh R0 (Reg R1); x ],
      V (-4L) );
    ( "alu64/neg-min-is-min",
      [ I.Lddw (R0, Int64.min_int); a64 Neg R0 (i 0); x ],
      V Int64.min_int );
    ( "alu64/and-or-xor",
      [
        mvi R0 0b1100;
        a64 And R0 (i 0b1010);
        a64 Or R0 (i 1);
        a64 Xor R0 (i 0xFF);
        x;
      ],
      V 0xF6L );
    ("alu64/mov-reg", [ mvi R1 77; a64 Mov R0 (Reg R1); x ], V 77L);
    (* --- 32-bit ALU (always zero-extends the result) --------------- *)
    ("alu32/add-wraps", [ a32 Mov R0 (i (-1)); a32 Add R0 (i 1); x ], V 0L);
    ( "alu32/sub-zero-extends",
      [ mvi R0 0; a32 Sub R0 (i 1); x ],
      V 0xFFFFFFFFL );
    ( "alu32/mov-reg-truncates",
      [ I.Lddw (R1, 0xAABBCCDD11223344L); a32 Mov R0 (Reg R1); x ],
      V 0x11223344L );
    ("alu32/mov-imm-neg", [ a32 Mov R0 (i (-1)); x ], V 0xFFFFFFFFL);
    ( "alu32/mul-wraps",
      [ mvi R0 0x10000; a32 Mul R0 (i 0x10000); x ],
      V 0L );
    ( "alu32/div-is-unsigned",
      [ a32 Mov R0 (i (-1)); a32 Div R0 (i 2); x ],
      V 0x7FFFFFFFL );
    ("alu32/div-by-minus-one", [ mvi R0 5; a32 Div R0 (i (-1)); x ], V 0L);
    ("alu32/mod-by-minus-one", [ mvi R0 5; a32 Mod R0 (i (-1)); x ], V 5L);
    ("alu32/div-by-zero-imm", [ mvi R0 5; a32 Div R0 (i 0); x ], F);
    ( "alu32/mod-by-zero-reg",
      [ mvi R0 5; mvi R1 0; a32 Mod R0 (Reg R1); x ],
      F );
    ( "alu32/lsh-31-zero-extends",
      [ mvi R0 1; a32 Lsh R0 (i 31); x ],
      V 0x80000000L );
    ( "alu32/lsh-32-is-masked",
      [ mvi R0 7; mvi R1 32; a32 Lsh R0 (Reg R1); x ],
      V 7L );
    ( "alu32/rsh-on-low-word",
      [ mvi R0 (-8); a32 Rsh R0 (i 1); x ],
      V 0x7FFFFFFCL );
    ( "alu32/arsh-sign-extends-operand",
      [ mvi R0 (-8); a32 Arsh R0 (i 1); x ],
      V 0xFFFFFFFCL );
    ( "alu32/arsh-33-is-masked",
      [ mvi R0 (-8); mvi R1 33; a32 Arsh R0 (Reg R1); x ],
      V 0xFFFFFFFCL );
    ("alu32/neg", [ mvi R0 1; a32 Neg R0 (i 0); x ], V 0xFFFFFFFFL);
    ( "alu32/clears-upper-bits",
      [ I.Lddw (R0, 0xFFFFFFFF00000004L); a32 Add R0 (i 1); x ],
      V 5L );
    (* --- byte swaps ------------------------------------------------ *)
    ("endian/be16", [ mvi R0 0x1234; I.Endian (Be, R0, 16); x ], V 0x3412L);
    ( "endian/be16-uses-low-16",
      [ I.Lddw (R0, 0xABCD1234L); I.Endian (Be, R0, 16); x ],
      V 0x3412L );
    ( "endian/be32",
      [ I.Lddw (R0, 0x12345678L); I.Endian (Be, R0, 32); x ],
      V 0x78563412L );
    ( "endian/be64",
      [ I.Lddw (R0, 0x0102030405060708L); I.Endian (Be, R0, 64); x ],
      V 0x0807060504030201L );
    ( "endian/le16-truncates",
      [ I.Lddw (R0, 0xFFFF1234L); I.Endian (Le, R0, 16); x ],
      V 0x1234L );
    ( "endian/le32-truncates",
      [ I.Lddw (R0, 0xFFFFFFFF12345678L); I.Endian (Le, R0, 32); x ],
      V 0x12345678L );
    ( "endian/le64-is-identity",
      [ I.Lddw (R0, Int64.min_int); I.Endian (Le, R0, 64); x ],
      V Int64.min_int );
    (* --- jumps (offsets are in slots; Lddw occupies two) ------------ *)
    ("jump/ja-zero-is-nop", [ mvi R0 7; I.Ja 0; x ], V 7L);
    ("jump/ja-over-lddw", [ I.Ja 2; I.Lddw (R0, 99L); x ], V 0L);
    ( "jump/taken-offset-zero",
      [ mvi R0 3; I.Jcond (W64bit, Eq, R0, i 3, 0); x ],
      V 3L );
    ( "jump/backward-loop",
      [ mvi R0 0; a64 Add R0 (i 1); I.Jcond (W64bit, Ne, R0, i 5, -2); x ],
      V 5L );
    ( "jump/into-lddw-middle-faults",
      [ I.Jcond (W64bit, Eq, R0, i 0, 1); I.Lddw (R0, 1L); x ],
      F );
    ("jump/ja-out-of-range-faults", [ I.Ja 5; x ], F);
    ("jump/fall-off-end-faults", [ mvi R0 1 ], F);
    ( "jump/jmp32-compares-low-words",
      [
        I.Lddw (R1, 0xFFFFFFFF00000005L);
        mvi R0 1;
        I.Jcond (W32bit, Eq, R1, i 5, 1);
        mvi R0 0;
        x;
      ],
      V 1L );
    ( "jump/jmp64-sees-high-words",
      [
        I.Lddw (R1, 0xFFFFFFFF00000005L);
        mvi R0 1;
        I.Jcond (W64bit, Eq, R1, i 5, 1);
        mvi R0 0;
        x;
      ],
      V 0L );
    ( "jump/jset-tests-bits",
      [ mvi R0 12; I.Jcond (W64bit, Set, R0, i 0b0100, 1); mvi R0 0; x ],
      V 12L );
    ( "jump/signed-lt-on-min",
      [
        I.Lddw (R1, Int64.min_int);
        mvi R0 1;
        I.Jcond (W64bit, Slt, R1, i 0, 1);
        mvi R0 0;
        x;
      ],
      V 1L );
    ( "jump/unsigned-lt-on-min",
      [
        I.Lddw (R1, Int64.min_int);
        mvi R0 1;
        I.Jcond (W64bit, Lt, R1, i 0, 1);
        mvi R0 0;
        x;
      ],
      V 0L );
    (* --- stack memory ---------------------------------------------- *)
    ( "mem/stack-is-little-endian",
      [
        I.Lddw (R1, 0x0807060504030201L);
        I.Stx (W64, R10, -8, R1);
        I.Ldx (W8, R0, R10, -8);
        x;
      ],
      V 1L );
    ( "mem/stack-high-byte",
      [
        I.Lddw (R1, 0x0807060504030201L);
        I.Stx (W64, R10, -8, R1);
        I.Ldx (W8, R0, R10, -1);
        x;
      ],
      V 8L );
    ( "mem/st-imm-w32-stores-all-ones",
      [ I.St (W32, R10, -4, -1l); I.Ldx (W32, R0, R10, -4); x ],
      V 0xFFFFFFFFL );
    ( "mem/st-imm-w64-sign-extends",
      [ I.St (W64, R10, -8, -1l); I.Ldx (W64, R0, R10, -8); x ],
      V (-1L) );
    ( "mem/stxb-truncates",
      [ mvi R1 0x1FF; I.Stx (W8, R10, -1, R1); I.Ldx (W8, R0, R10, -1); x ],
      V 0xFFL );
    ( "mem/ldxh-zero-extends",
      [ I.St (W16, R10, -2, 0xFFEEl); I.Ldx (W16, R0, R10, -2); x ],
      V 0xFFEEL );
    ( "mem/ldxw-zero-extends",
      [
        I.St (W32, R10, -4, Int32.min_int); I.Ldx (W32, R0, R10, -4); x;
      ],
      V 0x80000000L );
    ("mem/read-past-stack-top-faults", [ I.Ldx (W32, R0, R10, 0); x ], F);
    ("mem/write-below-stack-faults", [ I.St (W8, R10, -513, 1l); x ], F);
    (* --- helper calls ---------------------------------------------- *)
    ( "call/args-reach-helper",
      [ mvi R1 2; mvi R2 3; I.Call 1; x ],
      V 5L );
    ( "call/all-five-args",
      [ mvi R1 1; mvi R2 2; mvi R3 3; mvi R4 4; mvi R5 5; I.Call 1; x ],
      V 15L );
    ("call/unknown-helper-faults", [ I.Call 999; x ], F);
    ( "call/result-lands-in-r0",
      [ I.Call 1; a64 Add R0 (i 1); x ],
      V 1L );
    (* --- entry state ----------------------------------------------- *)
    ("init/exit-returns-zero", [ x ], V 0L);
    ("init/registers-start-zeroed", [ a64 Mov R0 (Reg R9); x ], V 0L);
  ]

let run_one engine prog =
  let vm = Vm.create ~budget:10_000 ~engine ~helpers prog in
  match Vm.run vm with v -> Ok v | exception Vm.Error m -> Error m

let check_vector (name, prog, expect) =
  let check () =
    List.iter
      (fun engine ->
        let label = Printf.sprintf "%s [%s]" name (Vm.engine_name engine) in
        match (run_one engine prog, expect) with
        | Ok got, V want ->
          Alcotest.(check int64) label want got
        | Error _, F -> ()
        | Ok got, F ->
          Alcotest.failf "%s: expected a fault, returned %Ld" label got
        | Error m, V want ->
          Alcotest.failf "%s: expected %Ld, faulted: %s" label want m)
      Vm.all_engines
  in
  Alcotest.test_case name `Quick check

(* The encoder round trip must preserve every vector — the engines all
   consume decoded instructions, and real deployments ship wire form. *)
let test_wire_round_trip () =
  List.iter
    (fun (name, prog, _) ->
      Alcotest.(check (list string))
        name
        (List.map I.to_string prog)
        (List.map I.to_string (I.decode (I.encode prog))))
    vectors

(* --- map conformance ------------------------------------------------- *)

(* The map helpers live above the raw VM, in the VMM, so these vectors
   pin their semantics through a full register/attach/run round trip —
   still once per engine. Expected outcomes: a final r0 (MV), a runtime
   fault swallowed into the native default (MF: default returned, fault
   counted), or a clean verifier rejection at registration (MREJ). *)

module A = Asm

type mexpect = MV of int64 | MF | MREJ

let hash_map ?(kind = Map.Hash) ?(max_entries = 4) () =
  [ Xbgp.Xprog.map ~name:"m" ~kind ~max_entries ~key_size:4 ~value_size:8 () ]

(* store key [k] (u32 LE) at r10-4 and point r1/r2 at (map 0, key) *)
let key k =
  A.[ stw R10 (-4) k; movi R1 0; mov R2 R10; addi R2 (-4) ]

(* additionally store value [v] (u64 LE) at r10-16 and point r3 at it *)
let key_value k v =
  key k @ A.[ stdw R10 (-16) v; mov R3 R10; addi R3 (-16) ]

let upd = A.[ call Xbgp.Api.h_map_update ]
let look = A.[ call Xbgp.Api.h_map_lookup ]
let del = A.[ call Xbgp.Api.h_map_delete ]
let bad = A.[ label "bad"; movi R0 (-1); exit_ ]

let map_vectors : (string * Xbgp.Xprog.map_spec list * Insn.t list * mexpect) list
    =
  [
    ( "map/update-lookup-roundtrip",
      hash_map (),
      A.assemble
        (key_value 5 42 @ upd @ key 5 @ look
        @ A.[ jeqi R0 0 "bad"; ldxdw R0 R0 0; exit_ ]
        @ bad),
      MV 42L );
    ( "map/lookup-miss-is-null",
      hash_map (),
      A.assemble
        (key 5 @ look @ A.[ jnei R0 0 "bad"; movi R0 7; exit_ ] @ bad),
      MV 7L );
    ( "map/delete-then-miss",
      hash_map (),
      A.assemble
        (key_value 5 42 @ upd @ key 5 @ del
        @ A.[ jnei R0 0 "bad" ]
        (* a second delete finds nothing and reports -1 *)
        @ key 5 @ del
        @ A.[ jeqi R0 0 "bad" ]
        @ key 5 @ look
        @ A.[ jnei R0 0 "bad"; movi R0 3; exit_ ]
        @ bad),
      MV 3L );
    ( "map/full-hash-update-fails",
      hash_map ~max_entries:2 (),
      A.assemble
        (key_value 1 11 @ upd @ key_value 2 22 @ upd @ key_value 3 33 @ upd
        @ A.[ exit_ ]),
      MV (-1L) );
    ( "map/lru-evicts-least-recent",
      hash_map ~kind:Map.Lru ~max_entries:2 (),
      A.assemble
        (key_value 1 11 @ upd @ key_value 2 22 @ upd
        (* touch key 1 so key 2 is the eviction victim *)
        @ key 1 @ look
        @ key_value 3 33 @ upd
        @ key 2 @ look
        @ A.[ jnei R0 0 "bad" ]
        @ key 1 @ look
        @ A.[ jeqi R0 0 "bad"; ldxdw R0 R0 0; exit_ ]
        @ bad),
      MV 11L );
    ( "map/array-slot-always-exists",
      hash_map ~kind:Map.Per_peer_array (),
      A.assemble
        (key 2 @ look
        @ A.[ jeqi R0 0 "bad"; ldxdw R0 R0 0; addi R0 5; exit_ ]
        @ bad),
      MV 5L );
    ( "map/array-oob-index-rejected",
      hash_map ~kind:Map.Per_peer_array (),
      A.assemble
        (* update and lookup on slot 99 of a 4-slot array: the update
           reports -1 and the lookup reports null, neither faults *)
        (key_value 99 1 @ upd
        @ A.[ jeqi R0 0 "bad" ]
        @ key 99 @ look
        @ A.[ jnei R0 0 "bad"; movi R0 9; exit_ ]
        @ bad),
      MV 9L );
    ( "map/short-key-buffer-faults",
      hash_map (),
      (* key pointer at r10: reading key_size bytes crosses the stack
         top, so the helper faults and the chain falls back to native *)
      A.assemble A.[ movi R1 0; mov R2 R10; call Xbgp.Api.h_map_lookup; exit_ ],
      MF );
    ( "map/unresolvable-oob-index-faults",
      hash_map (),
      (* the index comes out of memory, so the verifier cannot prove it
         wrong statically; the runtime bounds check must fault instead *)
      A.assemble
        A.[
            stw R10 (-8) 9;
            ldxw R1 R10 (-8);
            stw R10 (-4) 0;
            mov R2 R10;
            addi R2 (-4);
            call Xbgp.Api.h_map_lookup;
            exit_;
          ],
      MF );
    ( "map/undeclared-index-rejected",
      hash_map (),
      A.assemble
        A.[
            movi R1 1;
            mov R2 R10;
            addi R2 (-4);
            call Xbgp.Api.h_map_lookup;
            exit_;
          ],
      MREJ );
    ( "map/no-maps-declared-rejected",
      [],
      A.assemble
        A.[
            movi R1 0;
            mov R2 R10;
            addi R2 (-4);
            call Xbgp.Api.h_map_lookup;
            exit_;
          ],
      MREJ );
  ]

let run_map_vector engine ~maps prog =
  let xp = Xbgp.Xprog.v ~name:"conformance" ~maps [ ("main", prog) ] in
  let vmm = Xbgp.Vmm.create ~budget:10_000 ~engine ~host:"conf" () in
  match Xbgp.Vmm.register vmm xp with
  | Error e -> Error e
  | Ok () -> (
    match
      Xbgp.Vmm.attach vmm ~program:"conformance" ~bytecode:"main"
        ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
    with
    | Error e -> Error e
    | Ok () ->
      let v =
        Xbgp.Vmm.run vmm Xbgp.Api.Bgp_inbound_filter
          ~ops:Xbgp.Host_intf.null_ops
          ~args:
            (Xbgp.Host_intf.Args.of_list
               [ (Xbgp.Api.arg_prefix, Bytes.make 5 '\x00') ])
          ~default:(fun () -> 0L)
      in
      let st = Xbgp.Vmm.stats vmm in
      Ok (v, st.faults))

let check_map_vector (name, maps, prog, expect) =
  let check () =
    List.iter
      (fun engine ->
        let label = Printf.sprintf "%s [%s]" name (Vm.engine_name engine) in
        match (run_map_vector engine ~maps prog, expect) with
        | Ok (got, faults), MV want ->
          Alcotest.(check int64) label want got;
          Alcotest.(check int) (label ^ " fault count") 0 faults
        | Ok (got, faults), MF ->
          Alcotest.(check int64) (label ^ " native default") 0L got;
          Alcotest.(check bool) (label ^ " fault counted") true (faults > 0)
        | Error _, MREJ -> ()
        | Ok (got, _), MREJ ->
          Alcotest.failf "%s: expected a verifier rejection, ran to %Ld"
            label got
        | Error m, (MV _ | MF) ->
          Alcotest.failf "%s: rejected at registration: %s" label m)
      Vm.all_engines
  in
  Alcotest.test_case name `Quick check

let () =
  Alcotest.run "ebpf-conformance"
    [
      ("vectors", List.map check_vector vectors);
      ("map vectors", List.map check_map_vector map_vectors);
      ( "encoding",
        [ Alcotest.test_case "wire round trip" `Quick test_wire_round_trip ]
      );
    ]
