(* Tests for libxbgp: the API constants, manifests, and above all the
   Virtual Machine Manager semantics of §2.1 — ordered chains, next(),
   fault fallback, isolation, ephemeral vs persistent memory, maps. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool
let check_i64 = Alcotest.check Alcotest.int64

open Ebpf.Asm

let r0 = Ebpf.Insn.R0
let r1 = Ebpf.Insn.R1
let r2 = Ebpf.Insn.R2
let r3 = Ebpf.Insn.R3

(* a one-bytecode program returning a constant *)
let const_prog name v =
  Xbgp.Xprog.v ~name [ ("main", assemble [ movi r0 v; exit_ ]) ]

let next_prog name =
  Xbgp.Xprog.v ~name
    [ ("main", assemble [ call Xbgp.Api.h_next; movi r0 0; exit_ ]) ]

let fresh_vmm () = Xbgp.Vmm.create ~host:"test" ()

let ok = function
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* --- API naming --- *)

let test_api_names () =
  List.iter
    (fun p ->
      check_bool "point name roundtrip" true
        (Xbgp.Api.point_of_name (Xbgp.Api.point_name p) = Some p))
    Xbgp.Api.all_points;
  List.iter
    (fun h ->
      check_bool "helper name roundtrip" true
        (Xbgp.Api.helper_of_name (Xbgp.Api.helper_name h) = Some h))
    Xbgp.Api.all_helpers;
  check_bool "unknown point" true (Xbgp.Api.point_of_name "NOPE" = None)

(* --- manifest --- *)

let test_manifest_roundtrip () =
  let m =
    Xbgp.Manifest.v
      ~programs:[ "geoloc"; "igp_filter" ]
      ~attachments:
        [
          {
            program = "geoloc";
            bytecode = "receive";
            point = Xbgp.Api.Bgp_receive_message;
            order = 0;
          };
          {
            program = "igp_filter";
            bytecode = "export_igp";
            point = Xbgp.Api.Bgp_outbound_filter;
            order = 5;
          };
        ]
  in
  match Xbgp.Manifest.parse (Xbgp.Manifest.to_string m) with
  | Ok m' -> check_bool "roundtrip" true (m = m')
  | Error e -> Alcotest.fail e

let test_manifest_parse_errors () =
  let bad s =
    match Xbgp.Manifest.parse s with Error _ -> true | Ok _ -> false
  in
  check_bool "bad point" true (bad "attach p b NOT_A_POINT 0");
  check_bool "bad order" true (bad "attach p b BGP_INIT x");
  check_bool "unknown directive" true (bad "frobnicate yes");
  check_bool "comments and blanks ok" false
    (bad "# hello\n\nprogram p # trailing\n")

let test_manifest_load_errors () =
  let vmm = fresh_vmm () in
  let m = Xbgp.Manifest.v ~programs:[ "missing" ] ~attachments:[] in
  check_bool "unknown program" true
    (match Xbgp.Manifest.load vmm ~registry:(fun _ -> None) m with
    | Error _ -> true
    | Ok () -> false)

let test_xprog_validation () =
  check_bool "empty bytecode list" true
    (match Xbgp.Xprog.v ~name:"x" [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad map sizes" true
    (match
       Xbgp.Xprog.v ~name:"x"
         ~maps:[ Xbgp.Xprog.map ~key_size:0 ~value_size:4 () ]
         [ ("m", assemble [ movi r0 0; exit_ ]) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "negative scratch" true
    (match
       Xbgp.Xprog.v ~name:"x" ~scratch_size:(-1)
         [ ("m", assemble [ movi r0 0; exit_ ]) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- registration and attachment --- *)

let test_register_duplicate () =
  let vmm = fresh_vmm () in
  ok (Xbgp.Vmm.register vmm (const_prog "p" 1));
  check_bool "duplicate rejected" true
    (match Xbgp.Vmm.register vmm (const_prog "p" 2) with
    | Error _ -> true
    | Ok () -> false)

let test_register_verifies () =
  let vmm = fresh_vmm () in
  let bad =
    Xbgp.Xprog.v ~name:"bad" [ ("main", [ Ebpf.Insn.Ja 5; Ebpf.Insn.Exit ]) ]
  in
  check_bool "verifier runs at registration" true
    (match Xbgp.Vmm.register vmm bad with Error _ -> true | Ok () -> false);
  (* whitelist enforcement *)
  let sneaky =
    Xbgp.Xprog.v ~name:"sneaky" ~allowed_helpers:[ Xbgp.Api.h_next ]
      [ ("main", assemble [ call Xbgp.Api.h_rib_add; exit_ ]) ]
  in
  check_bool "whitelist enforced" true
    (match Xbgp.Vmm.register vmm sneaky with
    | Error _ -> true
    | Ok () -> false)

let test_attach_errors () =
  let vmm = fresh_vmm () in
  ok (Xbgp.Vmm.register vmm (const_prog "p" 1));
  check_bool "unknown program" true
    (match
       Xbgp.Vmm.attach vmm ~program:"q" ~bytecode:"main"
         ~point:Xbgp.Api.Bgp_decision ~order:0
     with
    | Error _ -> true
    | Ok () -> false);
  check_bool "unknown bytecode" true
    (match
       Xbgp.Vmm.attach vmm ~program:"p" ~bytecode:"nope"
         ~point:Xbgp.Api.Bgp_decision ~order:0
     with
    | Error _ -> true
    | Ok () -> false)

(* --- run semantics --- *)

let run_point ?(ops = Xbgp.Host_intf.null_ops) ?(args = []) vmm point default
    =
  Xbgp.Vmm.run vmm point ~ops ~args:(Xbgp.Host_intf.Args.of_list args) ~default

let test_no_attachment_runs_default () =
  let vmm = fresh_vmm () in
  check_i64 "default" 7L
    (run_point vmm Xbgp.Api.Bgp_inbound_filter (fun () -> 7L))

let test_chain_order_and_next () =
  let vmm = fresh_vmm () in
  ok (Xbgp.Vmm.register vmm (next_prog "first"));
  ok (Xbgp.Vmm.register vmm (const_prog "second" 22));
  (* attach out of order; manifest order decides *)
  ok
    (Xbgp.Vmm.attach vmm ~program:"second" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:10);
  ok
    (Xbgp.Vmm.attach vmm ~program:"first" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:1);
  check_i64 "first defers, second answers" 22L
    (run_point vmm Xbgp.Api.Bgp_inbound_filter (fun () -> 99L));
  check Alcotest.int "one next() recorded" 1 (Xbgp.Vmm.stats vmm).next_calls

let test_all_next_falls_to_native () =
  let vmm = fresh_vmm () in
  ok (Xbgp.Vmm.register vmm (next_prog "a"));
  ok (Xbgp.Vmm.register vmm (next_prog "b"));
  ok
    (Xbgp.Vmm.attach vmm ~program:"a" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_outbound_filter ~order:0);
  ok
    (Xbgp.Vmm.attach vmm ~program:"b" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_outbound_filter ~order:1);
  check_i64 "native default" 99L
    (run_point vmm Xbgp.Api.Bgp_outbound_filter (fun () -> 99L));
  check Alcotest.int "fallback recorded" 1
    (Xbgp.Vmm.stats vmm).native_fallbacks

let test_fault_notifies_and_falls_back () =
  let vmm = fresh_vmm () in
  let crash =
    Xbgp.Xprog.v ~name:"crash"
      [
        ( "main",
          assemble [ lddw r1 0xdeadL; ldxw r0 r1 0; exit_ ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm crash);
  ok
    (Xbgp.Vmm.attach vmm ~program:"crash" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0);
  let logged = ref [] in
  let ops =
    { Xbgp.Host_intf.null_ops with log = (fun m -> logged := m :: !logged) }
  in
  check_i64 "fell back" 5L
    (run_point ~ops vmm Xbgp.Api.Bgp_inbound_filter (fun () -> 5L));
  check Alcotest.int "fault counted" 1 (Xbgp.Vmm.stats vmm).faults;
  check_bool "host notified" true (!logged <> [])

let test_budget_fault_falls_back () =
  let vmm = Xbgp.Vmm.create ~host:"test" ~budget:1000 () in
  let spin =
    Xbgp.Xprog.v ~name:"spin"
      (* conditional that always loops at runtime: the verifier's
         reachability pass must see a path to [exit_] *)
      [ ("main", assemble [ movi r1 0; label "x"; jeqi r1 0 "x"; exit_ ]) ]
  in
  ok (Xbgp.Vmm.register vmm spin);
  ok
    (Xbgp.Vmm.attach vmm ~program:"spin" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  check_i64 "runaway bytecode stopped" 3L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> 3L));
  (* and the budget is refilled for the next run *)
  check_i64 "stopped again (budget reset)" 3L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> 3L));
  check Alcotest.int "two faults" 2 (Xbgp.Vmm.stats vmm).faults

(* --- memory model --- *)

let test_ephemeral_heap_reset () =
  (* memalloc the whole heap every run: only possible if the heap is
     reclaimed between runs *)
  let vmm = Xbgp.Vmm.create ~host:"test" ~heap_size:4096 () in
  let alloc =
    Xbgp.Xprog.v ~name:"alloc"
      [
        ( "main",
          assemble
            [
              movi r1 4000;
              call Xbgp.Api.h_memalloc;
              jnei r0 0 "good";
              movi r0 1;
              exit_;
              label "good";
              movi r0 0;
              exit_;
            ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm alloc);
  ok
    (Xbgp.Vmm.attach vmm ~program:"alloc" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  for i = 1 to 10 do
    check_i64
      (Printf.sprintf "run %d allocation succeeds" i)
      0L
      (run_point vmm Xbgp.Api.Bgp_decision (fun () -> -1L))
  done

let test_scratch_persists () =
  (* a counter in scratch memory survives across runs *)
  let vmm = fresh_vmm () in
  let counter =
    Xbgp.Xprog.v ~name:"counter" ~scratch_size:64
      [
        ( "main",
          assemble
            [
              lddw r1 Xbgp.Api.scratch_base;
              ldxdw r0 r1 0;
              addi r0 1;
              stxdw r1 0 r0;
              exit_;
            ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm counter);
  ok
    (Xbgp.Vmm.attach vmm ~program:"counter" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  for i = 1 to 5 do
    check_i64 "incrementing" (Int64.of_int i)
      (run_point vmm Xbgp.Api.Bgp_decision (fun () -> -1L))
  done

let test_isolation_no_foreign_scratch () =
  (* program B cannot reach A's scratch: the address is simply unmapped
     in B's VM, so the access faults and falls back to native *)
  let vmm = fresh_vmm () in
  let a =
    Xbgp.Xprog.v ~name:"a" ~scratch_size:64
      [
        ( "main",
          assemble
            [ lddw r1 Xbgp.Api.scratch_base; stdw r1 0 42; movi r0 1; exit_ ]
        );
      ]
  in
  let b =
    (* no scratch of its own; tries to read the scratch address *)
    Xbgp.Xprog.v ~name:"b"
      [
        ( "main",
          assemble [ lddw r1 Xbgp.Api.scratch_base; ldxdw r0 r1 0; exit_ ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm a);
  ok (Xbgp.Vmm.register vmm b);
  ok
    (Xbgp.Vmm.attach vmm ~program:"a" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  ok
    (Xbgp.Vmm.attach vmm ~program:"b" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_receive_message ~order:0);
  check_i64 "a writes its scratch" 1L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> -1L));
  check_i64 "b faults and falls back" (-7L)
    (run_point vmm Xbgp.Api.Bgp_receive_message (fun () -> -7L));
  check Alcotest.int "isolation fault recorded" 1 (Xbgp.Vmm.stats vmm).faults

(* --- helper plumbing --- *)

let test_get_arg_and_len () =
  let vmm = fresh_vmm () in
  let prog =
    (* return arg 3's second byte, or arg_len(9) when absent *)
    Xbgp.Xprog.v ~name:"args"
      [
        ( "main",
          assemble
            [
              movi r1 3;
              call Xbgp.Api.h_get_arg;
              jeqi r0 0 "absent";
              ldxb r0 r0 5;
              (* blob header 4 bytes + offset 1 *)
              exit_;
              label "absent";
              movi r1 9;
              call Xbgp.Api.h_arg_len;
              exit_;
            ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm prog);
  ok
    (Xbgp.Vmm.attach vmm ~program:"args" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  check_i64 "reads arg content" 0x22L
    (run_point vmm Xbgp.Api.Bgp_decision
       ~args:[ (3, Bytes.of_string "\x11\x22\x33") ]
       (fun () -> -1L));
  check_i64 "arg_len of missing arg" (-1L)
    (run_point vmm Xbgp.Api.Bgp_decision ~args:[] (fun () -> -1L))

let test_peer_info_layout () =
  let vmm = fresh_vmm () in
  let prog =
    Xbgp.Xprog.v ~name:"pi"
      [
        ( "main",
          assemble
            [
              call Xbgp.Api.h_get_peer_info;
              jeqi r0 0 "none";
              mov r2 r0;
              ldxw r0 r2 Xbgp.Api.pi_peer_as;
              ldxw r1 r2 Xbgp.Api.pi_cluster_id;
              add r0 r1;
              ldxw r1 r2 Xbgp.Api.pi_rr_client;
              add r0 r1;
              exit_;
              label "none";
              movi r0 (-1);
              exit_;
            ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm prog);
  ok
    (Xbgp.Vmm.attach vmm ~program:"pi" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  let ops =
    {
      Xbgp.Host_intf.null_ops with
      peer_info =
        (fun () ->
          Some
            {
              Xbgp.Host_intf.peer_type = Xbgp.Api.ibgp_session;
              peer_as = 65000;
              peer_router_id = 9;
              peer_addr = 8;
              local_as = 65000;
              local_router_id = 7;
              cluster_id = 1000;
              rr_client = true;
            });
    }
  in
  check_i64 "struct fields at documented offsets" 66001L
    (run_point ~ops vmm Xbgp.Api.Bgp_decision (fun () -> -1L))

let test_maps_across_runs () =
  let vmm = fresh_vmm () in
  let prog =
    (* run 1 (arg 1 = 0): store 99 under key 5; run 2: look it up *)
    Xbgp.Xprog.v ~name:"maps"
      ~maps:[ Xbgp.Xprog.map ~key_size:4 ~value_size:4 () ]
      [
        ( "main",
          assemble
            [
              stw Ebpf.Insn.R10 (-4) 5;
              movi r1 1;
              call Xbgp.Api.h_arg_len;
              jnei r0 (-1) "lookup";
              (* no arg: write *)
              stw Ebpf.Insn.R10 (-8) 99;
              movi r1 0;
              mov r2 Ebpf.Insn.R10;
              addi r2 (-4);
              mov r3 Ebpf.Insn.R10;
              addi r3 (-8);
              call Xbgp.Api.h_map_update;
              movi r0 0;
              exit_;
              label "lookup";
              movi r1 0;
              mov r2 Ebpf.Insn.R10;
              addi r2 (-4);
              call Xbgp.Api.h_map_lookup;
              jeqi r0 0 "missing";
              ldxw r0 r0 0;
              exit_;
              label "missing";
              movi r0 (-2);
              exit_;
            ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm prog);
  ok
    (Xbgp.Vmm.attach vmm ~program:"maps" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  check_i64 "write run" 0L
    (run_point vmm Xbgp.Api.Bgp_decision ~args:[] (fun () -> -1L));
  check
    Alcotest.(option int)
    "map size" (Some 1)
    (Xbgp.Vmm.map_size vmm ~program:"maps" 0);
  check_i64 "read run sees the value" 99L
    (run_point vmm Xbgp.Api.Bgp_decision
       ~args:[ (1, Bytes.empty) ]
       (fun () -> -1L))

let test_run_init () =
  let vmm = fresh_vmm () in
  let init_prog =
    Xbgp.Xprog.v ~name:"init" ~scratch_size:8
      [
        ( "setup",
          assemble
            [ lddw r1 Xbgp.Api.scratch_base; stdw r1 0 77; movi r0 0; exit_ ]
        );
      ]
  in
  ok (Xbgp.Vmm.register vmm init_prog);
  ok
    (Xbgp.Vmm.attach vmm ~program:"init" ~bytecode:"setup"
       ~point:Xbgp.Api.Bgp_init ~order:0);
  Xbgp.Vmm.run_init vmm ~ops:Xbgp.Host_intf.null_ops;
  match Xbgp.Vmm.scratch vmm ~program:"init" with
  | Some scratch ->
    check_i64 "init ran" 77L (Bytes.get_int64_le scratch 0)
  | None -> Alcotest.fail "no scratch"


let test_detach_and_listing () =
  let vmm = fresh_vmm () in
  ok (Xbgp.Vmm.register vmm (const_prog "p" 1));
  ok (Xbgp.Vmm.register vmm (const_prog "q" 2));
  ok
    (Xbgp.Vmm.attach vmm ~program:"p" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:5);
  ok
    (Xbgp.Vmm.attach vmm ~program:"q" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:1);
  check_bool "listing ordered by order field" true
    (Xbgp.Vmm.attachments vmm Xbgp.Api.Bgp_decision
    = [ ("q", "main", 1); ("p", "main", 5) ]);
  (* q answers first *)
  check_i64 "q runs first" 2L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> 0L));
  Xbgp.Vmm.detach vmm ~program:"q" ~point:Xbgp.Api.Bgp_decision;
  check_i64 "p after detach" 1L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> 0L));
  Xbgp.Vmm.detach vmm ~program:"p" ~point:Xbgp.Api.Bgp_decision;
  check_bool "empty after detach" false
    (Xbgp.Vmm.has_attachment vmm Xbgp.Api.Bgp_decision);
  check_bool "programs still registered" true
    (List.sort compare (Xbgp.Vmm.registered vmm) = [ "p"; "q" ])

(* --- whole-chain fused dispatch --- *)

let test_fused_fault_location () =
  (* a fault caught inside the fused closure carries its slot in the
     chain's address space; pin the rendering and the inversion *)
  let vmm = Xbgp.Vmm.create ~host:"test" ~engine:Ebpf.Vm.Chain () in
  let crash =
    Xbgp.Xprog.v ~name:"crash"
      [ ("main", assemble [ lddw r1 0xdeadL; ldxw r0 r1 0; exit_ ]) ]
  in
  ok (Xbgp.Vmm.register vmm (next_prog "front"));
  ok (Xbgp.Vmm.register vmm crash);
  ok
    (Xbgp.Vmm.attach vmm ~program:"front" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0);
  ok
    (Xbgp.Vmm.attach vmm ~program:"crash" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:1);
  check_bool "compilation is lazy" false
    (Xbgp.Vmm.chain_compiled vmm Xbgp.Api.Bgp_inbound_filter);
  check_i64 "fault falls back through the fused unit" 5L
    (run_point vmm Xbgp.Api.Bgp_inbound_filter (fun () -> 5L));
  check_bool "chain fused" true
    (Xbgp.Vmm.chain_compiled vmm Xbgp.Api.Bgp_inbound_filter);
  check Alcotest.int "fault counted" 1 (Xbgp.Vmm.stats vmm).faults;
  match Xbgp.Vmm.last_fault_record vmm with
  | None -> Alcotest.fail "no fault record"
  | Some f ->
    (* [front] is call/movi/exit = 3 slots, so the crash site's base is
       3; its faulting block leads at local pc 0 *)
    check
      Alcotest.(option int)
      "chain slot" (Some 3) f.Xbgp.Vmm.fault_chain_slot;
    check_bool "detail renders the chain slot" true
      (let detail = Xbgp.Vmm.fault_detail f in
       let needle = "; chain slot 3]" in
       let n = String.length needle and l = String.length detail in
       l >= n && String.sub detail (l - n) n = needle);
    check_bool "slot inverts to the faulting bytecode" true
      (Xbgp.Vmm.locate_chain_slot vmm Xbgp.Api.Bgp_inbound_filter 3
      = Some ("crash", "main", 0))

let test_rekey_recompiles_fused_chain () =
  (* replace_program invalidates the fused closure; the next dispatch
     runs the new code with preserved scratch and no dropped dispatch *)
  let vmm = Xbgp.Vmm.create ~host:"test" ~engine:Ebpf.Vm.Chain () in
  let counter ~bonus =
    Xbgp.Xprog.v ~name:"ctr" ~scratch_size:8
      [
        ( "main",
          assemble
            [
              lddw r1 Xbgp.Api.scratch_base;
              ldxdw r0 r1 0;
              addi r0 1;
              stxdw r1 0 r0;
              addi r0 bonus;
              exit_;
            ] );
      ]
  in
  ok (Xbgp.Vmm.register vmm (counter ~bonus:0));
  ok
    (Xbgp.Vmm.attach vmm ~program:"ctr" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_decision ~order:0);
  check_i64 "v1 run 1" 1L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> -1L));
  check_i64 "v1 run 2" 2L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> -1L));
  check_bool "fused before rekey" true
    (Xbgp.Vmm.chain_compiled vmm Xbgp.Api.Bgp_decision);
  ok (Xbgp.Vmm.replace_program vmm (counter ~bonus:100));
  check_bool "rekey invalidates the fused unit" false
    (Xbgp.Vmm.chain_compiled vmm Xbgp.Api.Bgp_decision);
  (* counter reads 2, becomes 3: new code ran AND scratch survived *)
  check_i64 "v2 sees v1's scratch" 103L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> -1L));
  check_bool "recompiled after rekey" true
    (Xbgp.Vmm.chain_compiled vmm Xbgp.Api.Bgp_decision);
  check Alcotest.int "no dispatch dropped to native" 0
    (Xbgp.Vmm.stats vmm).native_fallbacks;
  check Alcotest.int "no faults" 0 (Xbgp.Vmm.stats vmm).faults;
  (* error paths: unregistered name; attached bytecode missing *)
  check_bool "unregistered program rejected" true
    (match Xbgp.Vmm.replace_program vmm (const_prog "ghost" 1) with
    | Error _ -> true
    | Ok () -> false);
  let renamed =
    Xbgp.Xprog.v ~name:"ctr" [ ("other", assemble [ movi r0 0; exit_ ]) ]
  in
  check_bool "missing attached bytecode rejected" true
    (match Xbgp.Vmm.replace_program vmm renamed with
    | Error _ -> true
    | Ok () -> false);
  (* and the rejected swaps left the live chain untouched *)
  check_i64 "chain still live after rejected swaps" 104L
    (run_point vmm Xbgp.Api.Bgp_decision (fun () -> -1L))

let () =
  Alcotest.run "xbgp"
    [
      ("api", [ Alcotest.test_case "names" `Quick test_api_names ]);
      ( "xprog",
        [ Alcotest.test_case "validation" `Quick test_xprog_validation ] );
      ( "manifest",
        [
          Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_manifest_parse_errors;
          Alcotest.test_case "load errors" `Quick test_manifest_load_errors;
        ] );
      ( "vmm",
        [
          Alcotest.test_case "duplicate registration" `Quick
            test_register_duplicate;
          Alcotest.test_case "registration verifies" `Quick
            test_register_verifies;
          Alcotest.test_case "attach errors" `Quick test_attach_errors;
          Alcotest.test_case "no attachment -> default" `Quick
            test_no_attachment_runs_default;
          Alcotest.test_case "chain order and next()" `Quick
            test_chain_order_and_next;
          Alcotest.test_case "all next -> native" `Quick
            test_all_next_falls_to_native;
          Alcotest.test_case "fault -> notify + fallback" `Quick
            test_fault_notifies_and_falls_back;
          Alcotest.test_case "budget fault + refill" `Quick
            test_budget_fault_falls_back;
          Alcotest.test_case "ephemeral heap reset" `Quick
            test_ephemeral_heap_reset;
          Alcotest.test_case "scratch persists" `Quick test_scratch_persists;
          Alcotest.test_case "isolation between programs" `Quick
            test_isolation_no_foreign_scratch;
          Alcotest.test_case "get_arg / arg_len" `Quick test_get_arg_and_len;
          Alcotest.test_case "peer_info layout" `Quick test_peer_info_layout;
          Alcotest.test_case "maps persist across runs" `Quick
            test_maps_across_runs;
          Alcotest.test_case "run_init" `Quick test_run_init;
          Alcotest.test_case "detach and listing" `Quick
            test_detach_and_listing;
          Alcotest.test_case "fused fault location" `Quick
            test_fused_fault_location;
          Alcotest.test_case "rekey recompiles fused chain" `Quick
            test_rekey_recompiles_fused_chain;
        ] );
    ]
