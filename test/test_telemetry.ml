(* The telemetry substrate: histogram bucket math, the span tracer and
   its ring, and both exporters. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

module T = Telemetry
module H = Telemetry.Histogram

(* --- counters, gauges, interning --- *)

let test_counter_basics () =
  let t = T.create () in
  let c = T.counter t ~name:"c_total" ~labels:[ ("k", "v") ] () in
  T.Counter.inc c;
  T.Counter.add c 4;
  check_int "value" 5 (T.Counter.value c);
  check_int "counter_value finds it" 5
    (T.counter_value t ~name:"c_total" ~labels:[ ("k", "v") ]);
  check_int "absent reads 0" 0
    (T.counter_value t ~name:"c_total" ~labels:[ ("k", "other") ])

let test_interning () =
  let t = T.create () in
  (* same (name, labels) — label order must not matter — is one metric *)
  let a = T.counter t ~name:"x_total" ~labels:[ ("a", "1"); ("b", "2") ] () in
  let b = T.counter t ~name:"x_total" ~labels:[ ("b", "2"); ("a", "1") ] () in
  T.Counter.inc a;
  T.Counter.inc b;
  check_int "one instance behind both handles" 2 (T.Counter.value a);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Telemetry: metric \"x_total\" re-registered with another kind")
    (fun () -> ignore (T.gauge t ~name:"x_total" ~labels:[] ()))

let test_gauge_hwm () =
  let t = T.create () in
  let g = T.gauge t ~name:"g" ~labels:[] () in
  T.Gauge.set g 7;
  T.Gauge.add g 5;
  T.Gauge.add g (-9);
  check_int "value" 3 (T.Gauge.value g);
  check_int "high-water mark" 12 (T.Gauge.max_value g)

let test_counters_always_on () =
  (* counters must count even when the registry is disabled: the daemon
     stats snapshots are derived from them *)
  let t = T.create ~enabled:false () in
  let c = T.counter t ~name:"always_total" ~labels:[] () in
  T.Counter.inc c;
  check_int "disabled registry still counts" 1 (T.Counter.value c)

(* --- histogram bucket math --- *)

let test_bucket_boundaries () =
  (* bucket 0 holds <= 0; v >= 1 lands in 1 + floor(log2 v) *)
  List.iter
    (fun (v, b) ->
      check_int (Printf.sprintf "bucket_index %d" v) b (H.bucket_index v))
    [
      (-5, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
      (1023, 10); (1024, 11); (max_int, 62);
    ];
  check_int "upper of bucket 0" 0 (H.bucket_upper 0);
  check_int "upper of bucket 1" 1 (H.bucket_upper 1);
  check_int "upper of bucket 3" 7 (H.bucket_upper 3);
  check_int "upper of bucket 62 saturates" max_int (H.bucket_upper 62);
  check_int "upper of bucket 63 saturates" max_int (H.bucket_upper 63);
  (* every value sits within its own bucket's bounds *)
  List.iter
    (fun v ->
      let b = H.bucket_index v in
      check_bool
        (Printf.sprintf "%d <= upper(%d)" v b)
        true
        (max v 0 <= H.bucket_upper b))
    [ 0; 1; 2; 3; 5; 100; 4095; 4096; 123_456_789 ]

let test_histogram_observe_percentile () =
  let t = T.create () in
  let h = T.histogram t ~name:"h" ~labels:[] () in
  (* 90 small values and 10 large ones: p50 in the small range, p99 in
     the large range *)
  for _ = 1 to 90 do
    H.observe h 3
  done;
  for _ = 1 to 10 do
    H.observe h 1000
  done;
  check_int "count" 100 (H.count h);
  check_int "sum" ((90 * 3) + (10 * 1000)) (H.sum h);
  check_int "bucket of 3 holds 90" 90 (H.bucket_count h (H.bucket_index 3));
  check_int "p50 is the 3-bucket's upper bound" 3 (H.p50 h);
  check_int "p99 is the 1000-bucket's upper bound" 1023 (H.p99 h);
  check_int "p100 too" 1023 (H.percentile h 100.);
  check_int "empty histogram reports 0" 0
    (H.p50 (T.histogram t ~name:"h2" ~labels:[] ()))

let test_histogram_merge () =
  let t = T.create () in
  let a = T.histogram t ~name:"a" ~labels:[] () in
  let b = T.histogram t ~name:"b" ~labels:[] () in
  List.iter (H.observe a) [ 1; 2; 3 ];
  List.iter (H.observe b) [ 100; 200 ];
  H.merge_into ~dst:a b;
  check_int "merged count" 5 (H.count a);
  check_int "merged sum" 306 (H.sum a);
  check_int "merged bucket of 100" 1 (H.bucket_count a (H.bucket_index 100));
  check_int "src untouched" 2 (H.count b)

(* percentiles must bound the true quantile: q <= reported < 2 * max q 1 *)
let prop_percentile_bounds =
  QCheck.Test.make ~count:500 ~name:"histogram percentile bounds quantile"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (int_bound 1_000_000))
        (float_bound_inclusive 100.))
    (fun (values, p) ->
      let t = T.create () in
      let h = T.histogram t ~name:"q" ~labels:[] () in
      List.iter (H.observe h) values;
      let sorted = List.sort compare values in
      let n = List.length sorted in
      let rank =
        max 1 (int_of_float (ceil (p /. 100. *. float_of_int n)))
      in
      let q = List.nth sorted (min (n - 1) (rank - 1)) in
      let reported = T.Histogram.percentile h p in
      q <= reported && reported < 2 * max q 1)

(* --- spans --- *)

let test_span_nesting () =
  let t = T.create () in
  let clock = ref 0 in
  T.set_clock_us t (fun () -> !clock);
  let outer = T.span_begin t ~tags:[ ("k", "v") ] "outer" in
  clock := 10;
  let inner = T.span_begin t "inner" in
  clock := 25;
  T.span_end t inner;
  clock := 40;
  T.span_end t ~tags:[ ("late", "tag") ] outer;
  match T.spans t with
  | [ i; o ] ->
    check Alcotest.string "inner name" "inner" i.T.Span.name;
    check_int "inner parent is outer" o.T.Span.id i.T.Span.parent;
    check_int "outer has no parent" 0 o.T.Span.parent;
    check_int "inner start" 10 i.T.Span.ts_us;
    check_int "inner duration" 15 i.T.Span.dur_us;
    check_int "outer duration" 40 o.T.Span.dur_us;
    check Alcotest.(option string) "begin tag kept" (Some "v")
      (T.Span.tag o "k");
    check Alcotest.(option string) "end tag appended" (Some "tag")
      (T.Span.tag o "late")
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_ring_wraparound () =
  let t = T.create ~ring_capacity:4 () in
  for i = 1 to 7 do
    let s = T.span_begin t (Printf.sprintf "s%d" i) in
    T.span_end t s
  done;
  let names = List.map (fun (s : T.Span.t) -> s.name) (T.spans t) in
  check
    Alcotest.(list string)
    "ring keeps the newest, oldest first" [ "s4"; "s5"; "s6"; "s7" ] names;
  check_int "dropped count" 3 (T.dropped_spans t);
  T.reset_spans t;
  check_int "reset empties the ring" 0 (List.length (T.spans t));
  check_int "reset clears dropped" 0 (T.dropped_spans t)

let test_span_disabled () =
  let t = T.create ~enabled:false () in
  let s = T.span_begin t "ghost" in
  check_int "dummy span id" 0 s.T.Span.id;
  T.span_end t s;
  check_int "nothing recorded" 0 (List.length (T.spans t))

(* --- exporters --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_prometheus_export () =
  let t = T.create () in
  let c =
    T.counter t ~help:"requests served" ~name:"req_total"
      ~labels:[ ("method", "get"); ("code", "200") ]
      ()
  in
  T.Counter.add c 42;
  let g = T.gauge t ~name:"depth" ~labels:[] () in
  T.Gauge.set g 3;
  let h = T.histogram t ~name:"lat" ~labels:[ ("op", "run") ] () in
  List.iter (T.Histogram.observe h) [ 1; 2; 3; 500 ];
  let out = T.to_prometheus t in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "export contains %S" needle) true
        (contains ~needle out))
    [
      "# HELP req_total requests served";
      "# TYPE req_total counter";
      "req_total{code=\"200\",method=\"get\"} 42";
      "# TYPE depth gauge";
      "depth 3";
      "# TYPE lat histogram";
      "lat_bucket{op=\"run\",le=\"1\"} 1";
      "lat_bucket{op=\"run\",le=\"3\"} 3";
      "lat_bucket{op=\"run\",le=\"+Inf\"} 4";
      "lat_sum{op=\"run\"} 506";
      "lat_count{op=\"run\"} 4";
    ]

(* A tiny JSON syntax checker — no JSON library in the tree, and the
   trace exporter must emit something a real parser will accept, so walk
   the grammar by hand. *)
let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c ->
      advance ();
      true
    | _ -> false
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> false
  and literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      true)
    else false
  and number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if peek () = Some '.' then (
      advance ();
      digits ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    !pos > start
  and string_lit () =
    if not (expect '"') then false
    else
      let rec go () =
        match peek () with
        | None -> false
        | Some '"' ->
          advance ();
          true
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance ();
            go ()
          | Some 'u' ->
            advance ();
            let hex = ref 0 in
            let ok = ref true in
            while !hex < 4 && !ok do
              (match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> ok := false);
              incr hex
            done;
            !ok && go ()
          | _ -> false)
        | Some c when Char.code c < 0x20 -> false
        | Some _ ->
          advance ();
          go ()
      in
      go ()
  and arr () =
    if not (expect '[') then false
    else (
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        true)
      else
        let rec elems () =
          if not (value ()) then false
          else (
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elems ()
            | Some ']' ->
              advance ();
              true
            | _ -> false)
        in
        elems ())
  and obj () =
    if not (expect '{') then false
    else (
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        true)
      else
        let rec members () =
          skip_ws ();
          if not (string_lit ()) then false
          else (
            skip_ws ();
            if not (expect ':') then false
            else if not (value ()) then false
            else (
              skip_ws ();
              match peek () with
              | Some ',' ->
                advance ();
                members ()
              | Some '}' ->
                advance ();
                true
              | _ -> false))
        in
        members ())
  in
  let ok = value () in
  skip_ws ();
  ok && !pos = n

let test_json_checker_itself () =
  List.iter
    (fun (s, expected) ->
      check_bool (Printf.sprintf "json_valid %S" s) expected (json_valid s))
    [
      ("{}", true);
      ("[1, 2, {\"a\": \"b\\\"c\"}]", true);
      ("{\"x\": -1.5e3, \"y\": null}", true);
      ("{", false);
      ("{\"a\" 1}", false);
      ("[1,]", false);
      ("\"unterminated", false);
      ("{} trailing", false);
    ]

let test_chrome_trace_export () =
  let t = T.create () in
  let clock = ref 100 in
  T.set_clock_us t (fun () -> !clock);
  let s = T.span_begin t ~tags:[ ("engine", "block") ] "xbgp.run" in
  clock := 250;
  T.span_end t s;
  (* a hostile tag value: quotes, backslash, newline, control char *)
  let nasty = T.span_begin t ~tags:[ ("msg", "a\"b\\c\nd\x01") ] "weird" in
  T.span_end t nasty;
  let out = T.to_chrome_trace t in
  check_bool "trace is valid JSON" true (json_valid out);
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "trace contains %S" needle) true
        (contains ~needle out))
    [
      "\"traceEvents\"";
      "\"name\":\"xbgp.run\"";
      "\"ph\":\"X\"";
      "\"ts\":100";
      "\"dur\":150";
      "\"engine\":\"block\"";
    ]

let test_prometheus_of_empty () =
  check Alcotest.string "empty registry exports empty" ""
    (T.to_prometheus (T.create ()));
  check_bool "empty trace still valid JSON" true
    (json_valid (T.to_chrome_trace (T.create ())))

(* --- the per-xprog profile table --- *)

let test_profile_table () =
  let t = T.create () in
  check Alcotest.string "no runs, no table" "" (T.profile_table t);
  let labels =
    [
      ("host", "dut"); ("point", "BGP_INBOUND_FILTER");
      ("program", "igp_filter"); ("bytecode", "main");
      ("engine", "interpreted");
    ]
  in
  let insns = T.histogram t ~name:"xbgp_run_insns" ~labels () in
  let ns = T.histogram t ~name:"xbgp_run_ns" ~labels () in
  for _ = 1 to 10 do
    T.Histogram.observe insns 40;
    T.Histogram.observe ns 900
  done;
  let table = T.profile_table t in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "table mentions %S" needle) true
        (contains ~needle table))
    [ "BGP_INBOUND_FILTER"; "igp_filter"; "interpreted"; "10" ]

(* --- flight-recorder metrics --- *)

(* there is no [gauge_value] accessor; read through the [gauges] dump *)
let gauge_value t ~name ~labels =
  let labels = List.sort compare labels in
  match
    List.find_opt
      (fun (n, l, _) -> n = name && List.sort compare l = labels)
      (T.gauges t)
  with
  | Some (_, _, v) -> v
  | None -> 0

(* Overflow drops must be COUNTED, not silent: the ring forgets events,
   the registry remembers how many. *)
let test_recorder_overflow_counted () =
  let t = T.create ~enabled:true () in
  let rc = Obs.Recorder.create ~capacity:256 ~telemetry:t ~name:"ringtest" () in
  let payload = String.make 48 'x' in
  let n = 64 in
  for i = 1 to n do
    Obs.Recorder.record rc Obs.Recorder.Note
      [ ("i", string_of_int i); ("pad", payload) ]
  done;
  check_bool "ring overflowed" true (Obs.Recorder.dropped rc > 0);
  check_int "drops land in xbgp_recorder_dropped_total"
    (Obs.Recorder.dropped rc)
    (T.counter_value t ~name:"xbgp_recorder_dropped_total"
       ~labels:[ ("recorder", "ringtest") ]);
  check_int "per-kind counter saw every record, dropped or not" n
    (T.counter_value t ~name:"xbgp_recorder_events_total"
       ~labels:[ ("recorder", "ringtest"); ("kind", "note") ]);
  check_int "held + dropped = recorded" n
    (Obs.Recorder.length rc + Obs.Recorder.dropped rc);
  (* the survivors are the NEWEST events, contiguous up to next_seq *)
  (match Obs.Recorder.events rc with
  | [] -> Alcotest.fail "ring empty after recording"
  | first :: _ as evs ->
    let last = List.nth evs (List.length evs - 1) in
    check_int "newest survives" (n - 1) last.Obs.Recorder.seq;
    check_int "survivors are contiguous"
      (List.length evs)
      (last.Obs.Recorder.seq - first.Obs.Recorder.seq + 1))

let test_recorder_occupancy_gauge () =
  let t = T.create ~enabled:true () in
  let rc = Obs.Recorder.create ~capacity:512 ~telemetry:t ~name:"occ" () in
  check_int "empty ring, zero gauge" 0
    (gauge_value t ~name:"xbgp_recorder_bytes" ~labels:[ ("recorder", "occ") ]);
  Obs.Recorder.record rc Obs.Recorder.Note [ ("k", "v") ];
  let occ =
    gauge_value t ~name:"xbgp_recorder_bytes" ~labels:[ ("recorder", "occ") ]
  in
  check_bool "occupied after a record" true (occ > 0);
  check_bool "occupancy bounded by capacity" true
    (occ <= Obs.Recorder.capacity rc)

let test_recorder_json_shape () =
  let rc = Obs.Recorder.create ~capacity:1024 () in
  Obs.Recorder.record rc Obs.Recorder.Note
    [ ("msg", "quote\" backslash\\ newline\n ctrl\x01") ];
  check_bool "recorder JSON parses" true (json_valid (Obs.Recorder.to_json rc))

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "interning" `Quick test_interning;
          Alcotest.test_case "gauge high-water mark" `Quick test_gauge_hwm;
          Alcotest.test_case "counters ignore enabled" `Quick
            test_counters_always_on;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "observe and percentiles" `Quick
            test_histogram_observe_percentile;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Qc.to_alcotest prop_percentile_bounds;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and tags" `Quick test_span_nesting;
          Alcotest.test_case "ring wraparound" `Quick
            test_span_ring_wraparound;
          Alcotest.test_case "disabled tracer" `Quick test_span_disabled;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus_export;
          Alcotest.test_case "json checker sanity" `Quick
            test_json_checker_itself;
          Alcotest.test_case "chrome trace json" `Quick
            test_chrome_trace_export;
          Alcotest.test_case "empty registry" `Quick test_prometheus_of_empty;
          Alcotest.test_case "profile table" `Quick test_profile_table;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "overflow drops are counted" `Quick
            test_recorder_overflow_counted;
          Alcotest.test_case "occupancy gauge" `Quick
            test_recorder_occupancy_gauge;
          Alcotest.test_case "json shape" `Quick test_recorder_json_shape;
        ] );
    ]
