(* Tests for the RFC 4271 wire substrate: prefixes, path attributes and
   the message codec, with property tests on every round trip. *)

open Bgp

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool

(* --- prefixes --- *)

let test_prefix_string () =
  let p = Prefix.of_string "192.168.10.0/24" in
  check Alcotest.string "roundtrip" "192.168.10.0/24" (Prefix.to_string p);
  check Alcotest.int "length" 24 (Prefix.len p);
  (* host bits are cleared *)
  let q = Prefix.of_string "192.168.10.77/24" in
  check_bool "normalized" true (Prefix.equal p q);
  List.iter
    (fun s ->
      check_bool ("rejects " ^ s) true
        (match Prefix.of_string s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ "192.168.1.0"; "1.2.3.4/33"; "1.2.3/24"; "a.b.c.d/8"; "1.2.3.256/24" ]

let test_prefix_relations () =
  let p8 = Prefix.of_string "10.0.0.0/8" in
  let p16 = Prefix.of_string "10.1.0.0/16" in
  let other = Prefix.of_string "11.0.0.0/8" in
  check_bool "subset" true (Prefix.subset p16 p8);
  check_bool "not subset up" false (Prefix.subset p8 p16);
  check_bool "disjoint" false (Prefix.subset p16 other);
  check_bool "mem" true
    (Prefix.mem (Prefix.addr_of_quad (10, 1, 2, 3)) p16);
  check_bool "not mem" false
    (Prefix.mem (Prefix.addr_of_quad (10, 2, 2, 3)) p16);
  check Alcotest.int "bit 0 of 128.0.0.0/1" 1
    (Prefix.bit (Prefix.of_string "128.0.0.0/1") 0)

let gen_prefix =
  QCheck2.Gen.(
    map2
      (fun addr len -> Prefix.v addr len)
      (int_range 0 0xFFFFFFFF) (int_range 0 32))

let prop_prefix_wire_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"prefix NLRI wire roundtrip" gen_prefix
    (fun p ->
      let buf = Bytes.create (Prefix.wire_size p) in
      let n = Prefix.encode_into buf 0 p in
      let q, n' = Prefix.decode_from buf 0 (Bytes.length buf) in
      n = n' && Prefix.equal p q)

let prop_prefix_string_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"prefix string roundtrip" gen_prefix
    (fun p -> Prefix.equal p (Prefix.of_string (Prefix.to_string p)))

(* --- attributes --- *)

let gen_asn = QCheck2.Gen.int_range 1 0xFFFFFFFF
let gen_u32 = QCheck2.Gen.int_range 0 0xFFFFFFFF

let gen_segment =
  QCheck2.Gen.(
    let asns = list_size (int_range 1 8) gen_asn in
    oneof
      [ map (fun l -> Attr.Seq l) asns; map (fun l -> Attr.Set l) asns ])

let gen_attr_value =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun o -> Attr.Origin o)
          (oneofl [ Attr.Igp; Attr.Egp; Attr.Incomplete ]);
        map (fun s -> Attr.As_path s) (list_size (int_range 0 3) gen_segment);
        map (fun a -> Attr.Next_hop a) gen_u32;
        map (fun m -> Attr.Med m) gen_u32;
        map (fun p -> Attr.Local_pref p) gen_u32;
        return Attr.Atomic_aggregate;
        map2 (fun a r -> Attr.Aggregator (a, r)) gen_asn gen_u32;
        map (fun cs -> Attr.Communities cs) (list_size (int_range 1 6) gen_u32);
        map (fun r -> Attr.Originator_id r) gen_u32;
        map (fun l -> Attr.Cluster_list l) (list_size (int_range 1 4) gen_u32);
        map
          (fun s -> Attr.Unknown { code = 42; payload = Bytes.of_string s })
          (string_size (int_range 0 64));
      ])

let gen_attr = QCheck2.Gen.map Attr.v gen_attr_value

let prop_attr_wire_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"attribute wire roundtrip" gen_attr
    (fun a ->
      let buf = Buffer.create 32 in
      Attr.encode_into_buffer buf a;
      let bytes = Buffer.to_bytes buf in
      let a', consumed = Attr.decode_from bytes 0 (Bytes.length bytes) in
      consumed = Bytes.length bytes && Attr.equal a a')

let prop_attr_tlv_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"attribute neutral TLV roundtrip"
    gen_attr (fun a -> Attr.equal a (Attr.of_tlv (Attr.to_tlv a)))

let test_attr_extended_length () =
  (* a payload > 255 bytes forces the extended-length flag *)
  let a =
    Attr.v (Attr.Unknown { code = 99; payload = Bytes.create 300 })
  in
  let buf = Buffer.create 512 in
  Attr.encode_into_buffer buf a;
  let bytes = Buffer.to_bytes buf in
  check_bool "extended flag set" true
    (Bytes.get_uint8 bytes 0 land Attr.flag_extended <> 0);
  let a', _ = Attr.decode_from bytes 0 (Bytes.length bytes) in
  check_bool "payload preserved" true
    (match a'.value with
    | Attr.Unknown { payload; _ } -> Bytes.length payload = 300
    | _ -> false)

let test_as_path_helpers () =
  let segs = [ Attr.Seq [ 1; 2 ]; Attr.Set [ 3; 4; 5 ]; Attr.Seq [ 6 ] ] in
  check Alcotest.int "length counts set as 1" 4 (Attr.as_path_length segs);
  check
    Alcotest.(list int)
    "asns flattened" [ 1; 2; 3; 4; 5; 6 ]
    (Attr.as_path_asns segs);
  check Alcotest.(option int) "first" (Some 1) (Attr.as_path_first segs);
  check Alcotest.(option int) "origin" (Some 6) (Attr.as_path_origin segs);
  check_bool "prepend extends leading seq" true
    (Attr.as_path_prepend 9 segs = Attr.Seq [ 9; 1; 2 ] :: List.tl segs);
  check_bool "prepend onto empty" true
    (Attr.as_path_prepend 9 [] = [ Attr.Seq [ 9 ] ])

let test_attr_malformed () =
  let raises f =
    match f () with exception Attr.Parse_error _ -> true | _ -> false
  in
  check_bool "truncated header" true
    (raises (fun () -> Attr.decode_from (Bytes.create 1) 0 1));
  check_bool "bad origin" true
    (raises (fun () ->
         Attr.decode_payload ~code:Attr.code_origin ~flags:0x40
           (Bytes.of_string "\x07")));
  check_bool "bad next-hop length" true
    (raises (fun () ->
         Attr.decode_payload ~code:Attr.code_next_hop ~flags:0x40
           (Bytes.of_string "\x01\x02")));
  check_bool "truncated AS_PATH segment" true
    (raises (fun () ->
         Attr.decode_payload ~code:Attr.code_as_path ~flags:0x40
           (Bytes.of_string "\x02\x05\x00\x00")))

(* --- messages --- *)

let gen_update =
  QCheck2.Gen.(
    let prefixes = list_size (int_range 0 20) gen_prefix in
    map3
      (fun withdrawn attrs nlri -> { Message.withdrawn; attrs; nlri })
      prefixes
      (list_size (int_range 0 6) gen_attr)
      prefixes)

let prop_update_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"UPDATE encode/decode roundtrip"
    gen_update (fun u ->
      match Message.decode (Message.encode (Message.Update u)) with
      | Message.Update u' ->
        List.for_all2 Prefix.equal u.withdrawn u'.withdrawn
        && List.for_all2 Attr.equal u.attrs u'.attrs
        && List.for_all2 Prefix.equal u.nlri u'.nlri
      | _ -> false
      | exception _ -> false)

let test_open_roundtrip () =
  let o =
    { Message.version = 4; my_as = 65001; hold_time = 90; bgp_id = 0x0A000001 }
  in
  match Message.decode (Message.encode (Message.Open o)) with
  | Message.Open o' -> check_bool "open fields" true (o = o')
  | _ -> Alcotest.fail "expected OPEN"

let test_open_as_trans () =
  (* 32-bit ASNs use AS_TRANS in the 16-bit OPEN field *)
  let o =
    { Message.version = 4; my_as = 200000; hold_time = 90; bgp_id = 1 }
  in
  match Message.decode (Message.encode (Message.Open o)) with
  | Message.Open o' ->
    check Alcotest.int "AS_TRANS" Message.as_trans o'.my_as
  | _ -> Alcotest.fail "expected OPEN"

let test_keepalive_notification () =
  check_bool "keepalive" true
    (Message.decode (Message.encode Message.Keepalive) = Message.Keepalive);
  let n = { Message.code = 6; subcode = 2; data = Bytes.of_string "bye" } in
  match Message.decode (Message.encode (Message.Notification n)) with
  | Message.Notification n' ->
    check_bool "notification" true
      (n'.code = 6 && n'.subcode = 2 && Bytes.to_string n'.data = "bye")
  | _ -> Alcotest.fail "expected NOTIFICATION"

let test_decode_errors () =
  let raises b =
    match Message.decode b with
    | exception Message.Parse_error _ -> true
    | _ -> false
  in
  check_bool "short buffer" true (raises (Bytes.create 10));
  let m = Message.encode Message.Keepalive in
  Bytes.set_uint8 m 3 0;
  check_bool "bad marker" true (raises m);
  let m = Message.encode Message.Keepalive in
  Bytes.set_uint16_be m 16 100;
  check_bool "length mismatch" true (raises m);
  let m = Message.encode Message.Keepalive in
  Bytes.set_uint8 m 18 9;
  check_bool "unknown type" true (raises m)

let test_deframe () =
  let m1 = Message.encode Message.Keepalive in
  let m2 =
    Message.encode
      (Message.Update { Message.update_empty with nlri = [ Prefix.of_string "10.0.0.0/8" ] })
  in
  let stream = Bytes.cat m1 m2 in
  (* whole stream: two frames, nothing left *)
  let frames, rest = Message.deframe stream in
  check Alcotest.int "two frames" 2 (List.length frames);
  check Alcotest.int "no leftover" 0 (Bytes.length rest);
  (* partial second message *)
  let partial = Bytes.sub stream 0 (Bytes.length m1 + 5) in
  let frames, rest = Message.deframe partial in
  check Alcotest.int "one frame" 1 (List.length frames);
  check Alcotest.int "leftover" 5 (Bytes.length rest);
  (* garbage length field *)
  let bad = Bytes.make 19 '\xff' in
  Bytes.set_uint16_be bad 16 5;
  check_bool "invalid length rejected" true
    (match Message.deframe bad with
    | exception Message.Parse_error _ -> true
    | _ -> false)


let test_message_size_limit () =
  (* a frame beyond 4096 bytes must be refused at encode time *)
  check_bool "oversized update rejected" true
    (match
       Message.encode_update_raw ~withdrawn:[]
         ~attr_bytes:(Bytes.create 5000) ~nlri:[]
     with
    | exception Message.Parse_error _ -> true
    | _ -> false);
  (* and the largest the daemons build (~4000 + small nlri) fits *)
  check_bool "4000-byte attrs accepted" true
    (match
       Message.encode_update_raw ~withdrawn:[]
         ~attr_bytes:(Bytes.create 4000)
         ~nlri:[ Prefix.of_string "10.0.0.0/8" ]
     with
    | _ -> true
    | exception Message.Parse_error _ -> false)

(* --- robustness: arbitrary bytes must fail cleanly --- *)

let gen_bytes =
  QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 128)))

let prop_decode_never_crashes =
  QCheck2.Test.make ~count:2000 ~name:"Message.decode total on garbage"
    gen_bytes (fun b ->
      match Message.decode b with
      | _ -> true
      | exception Message.Parse_error _ -> true
      | exception _ -> false)

let prop_deframe_never_crashes =
  QCheck2.Test.make ~count:2000 ~name:"Message.deframe total on garbage"
    gen_bytes (fun b ->
      match Message.deframe b with
      | _ -> true
      | exception Message.Parse_error _ -> true
      | exception _ -> false)

let prop_attr_decode_never_crashes =
  QCheck2.Test.make ~count:2000 ~name:"Attr.of_tlv total on garbage"
    gen_bytes (fun b ->
      match Attr.of_tlv b with
      | _ -> true
      | exception Attr.Parse_error _ -> true
      | exception _ -> false)

(* a valid frame with flipped bytes: decode may fail but never crashes,
   and re-encoding a successful decode is stable *)
let prop_mutated_update =
  QCheck2.Test.make ~count:1000 ~name:"mutated UPDATE fails cleanly"
    QCheck2.Gen.(triple gen_update (int_range 0 200) (int_range 0 255))
    (fun (u, pos, v) ->
      let b = Message.encode (Message.Update u) in
      let pos = pos mod Bytes.length b in
      Bytes.set_uint8 b pos v;
      match Message.decode b with
      | _ -> true
      | exception Message.Parse_error _ -> true
      | exception _ -> false)

(* every strict prefix of a valid frame must error — truncation can
   neither decode successfully nor raise anything but Parse_error *)
let prop_truncated_update =
  QCheck2.Test.make ~count:200 ~name:"truncated UPDATE always errors"
    gen_update (fun u ->
      let b = Message.encode (Message.Update u) in
      let ok = ref true in
      for len = 0 to Bytes.length b - 1 do
        match Message.decode (Bytes.sub b 0 len) with
        | _ -> ok := false
        | exception Message.Parse_error _ -> ()
        | exception _ -> ok := false
      done;
      !ok)

let prop_truncated_attr =
  QCheck2.Test.make ~count:500 ~name:"truncated attribute always errors"
    gen_attr (fun a ->
      let buf = Buffer.create 32 in
      Attr.encode_into_buffer buf a;
      let b = Buffer.to_bytes buf in
      let ok = ref true in
      for len = 0 to Bytes.length b - 1 do
        match Attr.decode_from (Bytes.sub b 0 len) 0 len with
        | _ -> ok := false
        | exception Attr.Parse_error _ -> ()
        | exception _ -> ok := false
      done;
      (* and truncating the neutral TLV errors too *)
      let tlv = Attr.to_tlv a in
      for len = 0 to Bytes.length tlv - 1 do
        match Attr.of_tlv (Bytes.sub tlv 0 len) with
        | _ -> ok := false
        | exception Attr.Parse_error _ -> ()
        | exception _ -> ok := false
      done;
      !ok)

let test_encode_update_raw_matches () =
  (* the raw builder must agree with the typed encoder *)
  let u =
    {
      Message.withdrawn = [ Prefix.of_string "10.2.0.0/16" ];
      attrs =
        [
          Attr.v (Attr.Origin Attr.Igp);
          Attr.v (Attr.As_path [ Attr.Seq [ 1; 2 ] ]);
          Attr.v (Attr.Next_hop 0x0A000001);
        ];
      nlri = [ Prefix.of_string "10.1.0.0/16"; Prefix.of_string "10.3.0.0/24" ];
    }
  in
  let typed = Message.encode (Message.Update u) in
  let ab = Buffer.create 64 in
  List.iter (Attr.encode_into_buffer ab) u.attrs;
  let raw =
    Message.encode_update_raw ~withdrawn:u.withdrawn
      ~attr_bytes:(Buffer.to_bytes ab) ~nlri:u.nlri
  in
  check_bool "byte-identical" true (Bytes.equal typed raw)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "bgp"
    [
      ( "prefix",
        [
          Alcotest.test_case "string parsing" `Quick test_prefix_string;
          Alcotest.test_case "relations" `Quick test_prefix_relations;
          qc prop_prefix_wire_roundtrip;
          qc prop_prefix_string_roundtrip;
        ] );
      ( "attr",
        [
          Alcotest.test_case "extended length" `Quick
            test_attr_extended_length;
          Alcotest.test_case "as-path helpers" `Quick test_as_path_helpers;
          Alcotest.test_case "malformed payloads" `Quick test_attr_malformed;
          qc prop_attr_wire_roundtrip;
          qc prop_attr_tlv_roundtrip;
        ] );
      ( "message",
        [
          Alcotest.test_case "open" `Quick test_open_roundtrip;
          Alcotest.test_case "open AS_TRANS" `Quick test_open_as_trans;
          Alcotest.test_case "keepalive/notification" `Quick
            test_keepalive_notification;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "deframe" `Quick test_deframe;
          Alcotest.test_case "raw update builder" `Quick
            test_encode_update_raw_matches;
          Alcotest.test_case "size limit" `Quick test_message_size_limit;
          qc prop_update_roundtrip;
        ] );
      ( "robustness",
        [
          qc prop_decode_never_crashes;
          qc prop_deframe_never_crashes;
          qc prop_attr_decode_never_crashes;
          qc prop_mutated_update;
          qc prop_truncated_update;
          qc prop_truncated_attr;
        ] );
    ]
