(* RPKI tests: RFC 6483 validation semantics, and the equivalence of the
   trie-based (FRR-style) and hash-based (BIRD-style) stores against the
   list reference — the data structures behind §3.4 of the paper. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool

let p = Bgp.Prefix.of_string

let validation =
  Alcotest.testable Rpki.Roa.pp_validation ( = )

let test_validation_semantics () =
  let roas =
    [
      Rpki.Roa.v (p "10.0.0.0/16") ~max_len:24 ~asn:65001;
      Rpki.Roa.v (p "10.0.0.0/16") ~max_len:16 ~asn:65002;
    ]
  in
  let v = Rpki.Roa.validate_list roas in
  check validation "exact origin match" Rpki.Roa.Valid
    (v (p "10.0.0.0/16") 65001);
  check validation "second ROA matches too" Rpki.Roa.Valid
    (v (p "10.0.0.0/16") 65002);
  check validation "more specific within max_len" Rpki.Roa.Valid
    (v (p "10.0.1.0/24") 65001);
  check validation "too specific for 65002's max_len" Rpki.Roa.Invalid
    (v (p "10.0.1.0/24") 65002);
  check validation "wrong origin" Rpki.Roa.Invalid
    (v (p "10.0.0.0/16") 65003);
  check validation "beyond max_len entirely" Rpki.Roa.Invalid
    (v (p "10.0.0.0/25") 65001);
  check validation "uncovered prefix" Rpki.Roa.Not_found
    (v (p "11.0.0.0/16") 65001)

let test_roa_constructor () =
  check_bool "max_len below prefix length rejected" true
    (match Rpki.Roa.v (p "10.0.0.0/16") ~max_len:8 ~asn:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_parse_lines () =
  let text = "# comment\n10.0.0.0/16 24 65001\n\n192.168.0.0/24 24 65002\n" in
  let roas = Rpki.Roa.parse_lines text in
  check Alcotest.int "two ROAs" 2 (List.length roas);
  let roundtrip =
    Rpki.Roa.parse_lines
      (String.concat "\n" (List.map Rpki.Roa.to_line roas))
  in
  check_bool "to_line/parse roundtrip" true (roas = roundtrip);
  check_bool "malformed rejected" true
    (match Rpki.Roa.parse_lines "10.0.0.0/16 x 65001" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- store equivalence (the paper's trie vs hash) --- *)

let gen_prefix =
  QCheck2.Gen.(
    map2
      (fun addr len -> Bgp.Prefix.v (addr lsl 20) len)
      (int_range 0 255) (int_range 4 28))

let gen_roa =
  QCheck2.Gen.(
    gen_prefix >>= fun prefix ->
    let plen = Bgp.Prefix.len prefix in
    map2
      (fun extra asn -> Rpki.Roa.v prefix ~max_len:(min 32 (plen + extra)) ~asn)
      (int_range 0 4) (int_range 1 20))

let gen_case =
  QCheck2.Gen.(
    triple
      (list_size (int_range 0 40) gen_roa)
      gen_prefix (int_range 1 20))

let prop_trie_matches_reference =
  QCheck2.Test.make ~count:1000 ~name:"trie store = list reference" gen_case
    (fun (roas, prefix, origin) ->
      Rpki.Store_trie.validate (Rpki.Store_trie.of_list roas) prefix origin
      = Rpki.Roa.validate_list roas prefix origin)

let prop_hash_matches_reference =
  QCheck2.Test.make ~count:1000 ~name:"hash store = list reference" gen_case
    (fun (roas, prefix, origin) ->
      Rpki.Store_hash.validate (Rpki.Store_hash.of_list roas) prefix origin
      = Rpki.Roa.validate_list roas prefix origin)

let test_store_counts () =
  let roas =
    [
      Rpki.Roa.v (p "10.0.0.0/16") ~max_len:24 ~asn:1;
      Rpki.Roa.v (p "10.0.0.0/16") ~max_len:24 ~asn:2;
      Rpki.Roa.v (p "12.0.0.0/8") ~max_len:8 ~asn:3;
    ]
  in
  check Alcotest.int "trie count" 3
    (Rpki.Store_trie.count (Rpki.Store_trie.of_list roas));
  check Alcotest.int "hash count" 3
    (Rpki.Store_hash.count (Rpki.Store_hash.of_list roas))

(* hash store internals: growth and duplicate keys *)
let test_hash_growth () =
  let roas =
    List.init 1000 (fun i ->
        Rpki.Roa.v
          (Bgp.Prefix.v (i lsl 12) 24)
          ~max_len:24 ~asn:(i mod 7))
  in
  let store = Rpki.Store_hash.of_list roas in
  check Alcotest.int "all inserted" 1000 (Rpki.Store_hash.count store);
  List.iteri
    (fun i (roa : Rpki.Roa.t) ->
      check validation
        (Printf.sprintf "entry %d still valid after growth" i)
        Rpki.Roa.Valid
        (Rpki.Store_hash.validate store roa.prefix roa.asn))
    roas

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "rpki"
    [
      ( "semantics",
        [
          Alcotest.test_case "RFC 6483 cases" `Quick test_validation_semantics;
          Alcotest.test_case "constructor" `Quick test_roa_constructor;
          Alcotest.test_case "text format" `Quick test_parse_lines;
        ] );
      ( "stores",
        [
          Alcotest.test_case "counts" `Quick test_store_counts;
          Alcotest.test_case "hash growth" `Quick test_hash_growth;
          qc prop_trie_matches_reference;
          qc prop_hash_matches_reference;
        ] );
    ]
