(* Route provenance: the record that explains why a route is installed.

   The determinism contract under test: provenance records carry no
   counters, timestamps or batching artifacts, so the SAME scenario must
   yield byte-identical provenance (text AND json) whether the daemon
   processes NLRI batched or per-prefix, and whether it exports grouped
   or per-peer — on both hosts. Plus content checks: ingress peer, the
   xprog chain verdict, the winning decision step, and the on-demand
   decision recomputation when a competing withdrawal promotes a
   shadowed candidate. *)

let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let pfx = Bgp.Prefix.of_string

let pfx_contested = pfx "10.32.0.0/24" (* sinks 0 and 1 compete *)
let pfx_single = pfx "10.33.0.0/24" (* sink 1 alone *)
let pfx_gone = pfx "10.34.0.0/24" (* sink 2 announces then withdraws *)

(* The deterministic observed scenario: 4 sinks around an
   origin-validation DUT (same script as `xbgp-sim show --scenario star`). *)
let build ~host ~batch_updates ~update_groups =
  let roas = [ Rpki.Roa.v pfx_contested ~max_len:24 ~asn:65101 ] in
  let star =
    Scenario.Star.create ~host ~npeers:4
      ~manifest:Xprogs.Origin_validation.manifest
      ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
      ~batch_updates ~update_groups ()
  in
  Scenario.Star.establish star;
  let announce i path nlri =
    Scenario.Star.sink_announce star i
      ~attrs:
        Bgp.Attr.
          [
            v (Origin Igp);
            v (As_path [ Seq path ]);
            v (Next_hop (Scenario.Star.sink_address star i));
          ]
      nlri
  in
  announce 0 [ 65101 ] [ pfx_contested ];
  announce 1 [ 65102; 64999 ] [ pfx_contested ];
  announce 1 [ 65102 ] [ pfx_single ];
  announce 2 [ 65103 ] [ pfx_gone ];
  Scenario.Star.settle star;
  Scenario.Star.sink_withdraw star 2 [ pfx_gone ];
  Scenario.Star.settle star;
  star

(* Everything the introspection surface would print, as one comparable
   value: per-prefix provenance (installed best routes AND the
   last-record fallback for the withdrawn prefix), in both renderings. *)
let observe star =
  let d = Scenario.Star.dut star in
  let per_prefix p =
    match Scenario.Daemon.provenance d p with
    | Some pr -> (Obs.Provenance.to_text pr, Obs.Provenance.to_json pr)
    | None -> ("<none>", "null")
  in
  ( List.map
      (fun (p, pr) ->
        (Bgp.Prefix.to_string p, Obs.Provenance.to_text pr,
         Obs.Provenance.to_json pr))
      (Scenario.Daemon.provenance_snapshot d),
    List.map per_prefix [ pfx_contested; pfx_single; pfx_gone ] )

let host_name = function `Frr -> "frr" | `Bird -> "bird"

(* batched vs per-prefix dispatch, grouped vs per-peer export: all four
   knob corners must render byte-identically *)
let test_knob_invariance host () =
  let base =
    observe (build ~host ~batch_updates:true ~update_groups:true)
  in
  List.iter
    (fun (batch_updates, update_groups) ->
      let label =
        Printf.sprintf "%s batch=%b groups=%b" (host_name host) batch_updates
          update_groups
      in
      let got = observe (build ~host ~batch_updates ~update_groups) in
      check_bool (label ^ ": provenance byte-identical") true (got = base))
    [ (true, false); (false, true); (false, false) ]

(* the structural equality the fuzz oracles would use *)
let test_structural_equality host () =
  let d1 =
    Scenario.Star.dut (build ~host ~batch_updates:true ~update_groups:true)
  in
  let d2 =
    Scenario.Star.dut (build ~host ~batch_updates:false ~update_groups:false)
  in
  List.iter
    (fun p ->
      match
        (Scenario.Daemon.provenance d1 p, Scenario.Daemon.provenance d2 p)
      with
      | Some a, Some b ->
        check_bool
          (Bgp.Prefix.to_string p ^ ": Provenance.equal across knobs")
          true (Obs.Provenance.equal a b)
      | _ -> Alcotest.fail (Bgp.Prefix.to_string p ^ ": provenance missing"))
    [ pfx_contested; pfx_single; pfx_gone ]

let test_content host () =
  let star = build ~host ~batch_updates:true ~update_groups:true in
  let d = Scenario.Star.dut star in
  (* the contested prefix: sink 0 wins on AS-path length, the OV chain
     ran and mutated attributes (validation community) *)
  (match Scenario.Daemon.provenance d pfx_contested with
  | None -> Alcotest.fail "no provenance for the contested prefix"
  | Some pr ->
    check_string "ingress" "peer sink0 (AS 65101)" pr.Obs.Provenance.ingress;
    check_string "import verdict" "accepted" pr.Obs.Provenance.import;
    check_bool "status installed" true
      (pr.Obs.Provenance.status = Obs.Provenance.Installed);
    (match pr.Obs.Provenance.chain with
    | [ step ] ->
      check_string "chain program" "origin_validation"
        step.Obs.Provenance.program;
      check_bool "chain mutated attrs" true step.Obs.Provenance.attrs_mutated
    | chain ->
      Alcotest.failf "expected a 1-step chain, got %d" (List.length chain));
    match pr.Obs.Provenance.decision with
    | Some (Obs.Provenance.Best { runner_up; step_name; _ }) ->
      check_string "runner-up" "peer sink1 (AS 65102)" runner_up;
      check_string "deciding step" "as_path_len" step_name
    | _ -> Alcotest.fail "expected a Best decision with a runner-up");
  (* the uncontested prefix *)
  (match Scenario.Daemon.provenance d pfx_single with
  | Some
      {
        Obs.Provenance.decision = Some Obs.Provenance.Only_candidate;
        ingress;
        _;
      } ->
    check_string "single ingress" "peer sink1 (AS 65102)" ingress
  | _ -> Alcotest.fail "expected Only_candidate for the single prefix");
  (* the withdrawn prefix: the last-record fallback *)
  (match Scenario.Daemon.provenance d pfx_gone with
  | Some { Obs.Provenance.status = Obs.Provenance.Withdrawn; _ } -> ()
  | _ -> Alcotest.fail "expected a Withdrawn record for the gone prefix");
  (* the losing candidate is visible — and Shadowed by the winner *)
  match Scenario.Daemon.provenance_candidates d pfx_contested with
  | [ _; _ ] as cands ->
    check_bool "one candidate is shadowed" true
      (List.exists
         (fun (pr : Obs.Provenance.t) ->
           match pr.decision with
           | Some (Obs.Provenance.Shadowed { best; _ }) ->
             best = "peer sink0 (AS 65101)"
           | _ -> false)
         cands)
  | cands -> Alcotest.failf "expected 2 candidates, got %d" (List.length cands)

(* decision disposal is computed on demand: when the winner goes away,
   the shadowed candidate's record is promoted without a re-announce *)
let test_promotion_after_withdraw host () =
  let star = build ~host ~batch_updates:true ~update_groups:true in
  let d = Scenario.Star.dut star in
  Scenario.Star.sink_withdraw star 0 [ pfx_contested ];
  Scenario.Star.settle star;
  match Scenario.Daemon.provenance d pfx_contested with
  | Some pr ->
    check_string "promoted ingress" "peer sink1 (AS 65102)"
      pr.Obs.Provenance.ingress;
    check_bool "promoted to only candidate" true
      (pr.Obs.Provenance.decision = Some Obs.Provenance.Only_candidate);
    check_bool "promoted record is installed" true
      (pr.Obs.Provenance.status = Obs.Provenance.Installed)
  | None -> Alcotest.fail "no provenance after promotion"

(* the two hosts tell the same story (modulo nothing: same names, same
   steps), which is the cross-host determinism the paper's equivalence
   claims rest on *)
let test_cross_host () =
  let ob host = observe (build ~host ~batch_updates:true ~update_groups:true) in
  check_bool "frr and bird provenance byte-identical" true
    (ob `Frr = ob `Bird)

let host_cases host =
  [
    Alcotest.test_case "knob invariance (batched/grouped)" `Quick
      (test_knob_invariance host);
    Alcotest.test_case "structural equality across knobs" `Quick
      (test_structural_equality host);
    Alcotest.test_case "record content" `Quick (test_content host);
    Alcotest.test_case "promotion after competing withdrawal" `Quick
      (test_promotion_after_withdraw host);
  ]

let () =
  Alcotest.run "provenance"
    [
      ("frr", host_cases `Frr);
      ("bird", host_cases `Bird);
      ("cross-host", [ Alcotest.test_case "byte-identical" `Quick test_cross_host ]);
    ]
