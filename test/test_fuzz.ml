(* Tests for the differential fuzzer itself: generator determinism, a
   clean bounded campaign, and the full forced-divergence pipeline —
   oracle fires, shrinker minimizes, reproducer file round-trips and
   replays to the same findings. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- generator --- *)

let test_gen_deterministic () =
  for index = 0 to 30 do
    let a = Fuzz.Gen.case ~seed:7 ~index in
    let b = Fuzz.Gen.case ~seed:7 ~index in
    check_bool "same scenario" true (a.scenario = b.scenario);
    check_bool "same routes" true (a.routes = b.routes);
    check_bool "same frames" true (a.frames = b.frames);
    check_bool "same progs" true (a.progs = b.progs)
  done;
  (* distinct seeds should not generate identical campaigns *)
  let differs =
    List.exists
      (fun index ->
        Fuzz.Gen.case ~seed:1 ~index <> Fuzz.Gen.case ~seed:2 ~index)
      [ 0; 1; 2; 3; 4 ]
  in
  check_bool "seeds matter" true differs

let test_gen_wellformed_attrs () =
  (* differential-scenario routes must stay inside the shared native
     attribute vocabulary: no Unknown, and the mandatory three present *)
  for index = 0 to 80 do
    let c = Fuzz.Gen.case ~seed:11 ~index in
    List.iter
      (fun (r : Dataset.Ris_gen.route) ->
        let has code =
          List.exists (fun a -> Bgp.Attr.code a = code) r.attrs
        in
        check_bool "origin" true (has Bgp.Attr.code_origin);
        check_bool "as_path" true (has Bgp.Attr.code_as_path);
        check_bool "next_hop" true (has Bgp.Attr.code_next_hop);
        check_bool "no unknown" false
          (List.exists
             (fun (a : Bgp.Attr.t) ->
               match a.value with Bgp.Attr.Unknown _ -> true | _ -> false)
             r.attrs))
      c.routes
  done

let test_restrict () =
  let c = Fuzz.Gen.case ~seed:3 ~index:0 in
  let all = Fuzz.Gen.restrict c in
  check_bool "no restriction is identity" true (all = c);
  match c.routes with
  | [] -> ()
  | _ ->
    let one = Fuzz.Gen.restrict ~routes:[ 0 ] c in
    check_int "restricted to one route" 1 (List.length one.routes)

(* --- oracle: bounded clean campaign --- *)

let test_campaign_clean () =
  let s = Fuzz.Engine.campaign ~seed:7 ~cases:80 () in
  check_int "cases" 80 s.cases;
  check_int "no divergences" 0 (Fuzz.Engine.divergences s);
  check_int "no crashes" 0 (Fuzz.Engine.crashes s);
  check_int "no failing cases" 0 (List.length s.results);
  (* the scenario mix must actually exercise both differential and VM
     modes in a campaign this size *)
  check_bool "several scenarios covered" true (List.length s.scenarios >= 5)

(* --- forced divergence: oracle -> shrink -> reproducer -> replay --- *)

(* The first seed-7 case whose scenario feeds routes through the paired
   testbeds (the perturbation knob corrupts the BIRD-side Loc-RIB, so it
   only fires on differential scenarios with a non-empty table). *)
let first_differential_case () =
  let rec go index =
    if index > 500 then Alcotest.fail "no differential case in 500 indices"
    else
      let c = Fuzz.Gen.case ~seed:7 ~index in
      match c.scenario with
      | Fuzz.Gen.Plain_ebgp when c.routes <> [] -> c
      | _ -> go (index + 1)
  in
  go 0

let test_forced_divergence_fires () =
  let c = first_differential_case () in
  check_int "clean without perturbation" 0
    (List.length (Fuzz.Oracle.run c));
  let findings = Fuzz.Oracle.run ~perturb:true c in
  check_bool "perturbation produces findings" true (findings <> []);
  check_bool "findings are divergences" true
    (List.for_all
       (fun (f : Fuzz.Oracle.finding) -> f.kind = Fuzz.Oracle.Divergence)
       findings)

let test_shrink_minimizes () =
  let c = first_differential_case () in
  let minimized, routes, _, _ = Fuzz.Engine.shrink_case ~perturb:true c in
  (* dropping the first Loc-RIB entry diverges with any single route *)
  check_int "minimized to one route" 1 (List.length minimized.routes);
  (match routes with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "expected exactly one kept route index");
  check_bool "minimized case still fails" true
    (Fuzz.Oracle.run ~perturb:true minimized <> [])

let test_reproducer_round_trip () =
  let dir = Filename.temp_file "fuzzrepro" "" in
  Sys.remove dir;
  let s = Fuzz.Engine.campaign ~out:dir ~perturb:true ~seed:7 ~cases:8 () in
  check_bool "forced campaign fails somewhere" true (s.results <> []);
  List.iter
    (fun (f : Fuzz.Engine.failure) ->
      let path =
        match f.repro_path with
        | Some p -> p
        | None -> Alcotest.fail "no reproducer written"
      in
      (* the file parses back to the same reproducer *)
      (match Fuzz.Replay.load path with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check_string "same scenario" f.repro.scenario r.scenario;
        check_int "same seed" f.repro.seed r.seed;
        check_int "same case" f.repro.case_index r.case_index;
        check_bool "same kept routes" true (f.repro.routes = r.routes);
        (* replaying is deterministic: same findings, twice *)
        let run () =
          match Fuzz.Engine.replay r with
          | Error e -> Alcotest.fail e
          | Ok (_, findings) ->
            List.map (fun (x : Fuzz.Oracle.finding) -> x.detail) findings
        in
        let first = run () and second = run () in
        check_bool "replay finds the failure" true (first <> []);
        check_bool "replay is deterministic" true (first = second)))
    s.results;
  (* clean up the reproducer directory *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_replay_rejects_garbage () =
  (match Fuzz.Replay.of_string "not a reproducer" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Fuzz.Replay.of_string "# xbgp_fuzz reproducer v1\nseed x\n" with
  | Ok _ -> Alcotest.fail "accepted bad seed"
  | Error _ -> ()

(* --- chaos campaign --- *)

let test_chaos_gen_deterministic () =
  for index = 0 to 25 do
    let a = Fuzz.Config_gen.case ~seed:5 ~index
    and b = Fuzz.Config_gen.case ~seed:5 ~index in
    check_bool "identical case" true (a = b)
  done;
  let differs =
    List.exists
      (fun index ->
        Fuzz.Config_gen.case ~seed:1 ~index
        <> Fuzz.Config_gen.case ~seed:2 ~index)
      [ 0; 1; 2; 3; 4 ]
  in
  check_bool "seeds matter" true differs

let prop_chaos_gen_pure =
  QCheck2.Test.make ~name:"chaos case is a pure function of (seed, index)"
    ~count:60
    QCheck2.Gen.(pair (int_bound 99_999) (int_bound 500))
    (fun (seed, index) ->
      let a = Fuzz.Config_gen.case ~seed ~index in
      let b = Fuzz.Config_gen.case ~seed ~index in
      a = b
      (* restricting to every index is the identity *)
      && Fuzz.Config_gen.restrict
           ~faults:(List.mapi (fun i _ -> i) a.faults)
           ~routes:(List.mapi (fun i _ -> i) a.routes)
           a
         = a)

let test_chaos_verdict_deterministic () =
  (* same seed => same fault schedule, same verdict, same convergence
     samples — byte-for-byte replayability *)
  List.iter
    (fun index ->
      let c = Fuzz.Config_gen.case ~seed:7 ~index in
      let f1, conv1 = Fuzz.Chaos.run_case c in
      let f2, conv2 = Fuzz.Chaos.run_case c in
      check_bool "same findings" true
        (List.map (fun (f : Fuzz.Chaos.finding) -> (f.cls, f.detail)) f1
        = List.map (fun (f : Fuzz.Chaos.finding) -> (f.cls, f.detail)) f2);
      check_bool "same convergence samples" true (conv1 = conv2))
    [ 0; 1; 2 ]

let test_chaos_campaign_clean () =
  let s = Fuzz.Chaos.campaign ~seed:3 ~cases:25 () in
  check_int "cases" 25 s.cases;
  check_int "no failures" 0 (List.length s.failures);
  check_int "topology histogram sums" 25
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.topologies);
  check_bool "convergence samples collected" true (s.convergence <> [])

(* pinned regressions: the cases that surfaced the pending-queue
   reorder bug (ghost advertisement after a flap) and the silent
   loop-drop bug (stable ghost cycle after a fabric double failure) *)
let test_chaos_pinned_star () =
  let c = Fuzz.Config_gen.case ~seed:13 ~index:26 in
  let findings, _ = Fuzz.Chaos.run_case c in
  check_int "seed 13 case 26 clean" 0 (List.length findings)

let test_chaos_pinned_fabric () =
  let c = Fuzz.Config_gen.case ~seed:2026 ~index:88 in
  let findings, _ = Fuzz.Chaos.run_case c in
  check_int "seed 2026 case 88 clean" 0 (List.length findings)

let test_chaos_pinned_map_divergence () =
  (* pinned self-test for the map-state oracle: seed 42 case 17 runs a
     flap_damping-carrying chain whose damp map is non-empty at the end
     of every leg, so a frame/RIB-only oracle would pass a corrupted
     map fingerprint. The perturbation knob seeds exactly that
     divergence; the oracle must catch it as an Equivalence finding. *)
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let c = Fuzz.Config_gen.case ~seed:42 ~index:17 in
  check_bool "case carries a map-writing program" true
    (List.mem "flap_damping" c.chain);
  let clean, _ = Fuzz.Chaos.run_case c in
  check_int "clean without perturbation" 0 (List.length clean);
  let findings, _ = Fuzz.Chaos.run_case ~perturb:true c in
  check_bool "seeded map divergence caught" true
    (List.exists
       (fun (f : Fuzz.Chaos.finding) ->
         f.cls = Fuzz.Chaos.Equivalence
         && contains f.detail "map state differs")
       findings)

let test_chaos_perturb_pipeline () =
  (* the self-test knob corrupts leg 0's final snapshot: the oracle
     must fire, the shrinker must keep the divergence class, and the
     reproducer must round-trip through its file form and replay *)
  let dir = Filename.temp_file "chaosrepro" "" in
  Sys.remove dir;
  let s = Fuzz.Chaos.campaign ~out:dir ~perturb:true ~seed:7 ~cases:4 () in
  check_bool "perturbed campaign fails somewhere" true (s.failures <> []);
  List.iter
    (fun (f : Fuzz.Chaos.failure) ->
      check_bool "original classes recorded" true (f.classes <> []);
      check_bool "minimized case still finds them" true
        (List.exists
           (fun c -> List.mem c f.classes)
           (Fuzz.Chaos.classes_of f.findings));
      let path =
        match f.repro_path with
        | Some p -> p
        | None -> Alcotest.fail "no reproducer written"
      in
      let content =
        let ic = open_in path in
        let n = in_channel_length ic in
        let b = really_input_string ic n in
        close_in ic;
        b
      in
      check_bool "file routes to the chaos replayer" true
        (Fuzz.Replay.Chaos.is_chaos content);
      (match Fuzz.Replay.Chaos.load path with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check_int "same seed" f.repro.seed r.seed;
        check_int "same case" f.repro.case_index r.case_index;
        check_bool "same kept faults" true (f.repro.faults = r.faults);
        check_bool "same kept routes" true (f.repro.routes = r.routes);
        (* replaying is deterministic and reproduces the class *)
        let run () =
          match Fuzz.Chaos.replay r with
          | Error e -> Alcotest.fail e
          | Ok (_, findings, reproduced) ->
            check_bool "replay reproduces the class" true reproduced;
            List.map (fun (x : Fuzz.Chaos.finding) -> x.detail) findings
        in
        check_bool "replay is deterministic" true (run () = run ())))
    s.failures;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let prop_chaos_shrink_preserves_class =
  (* ddmin over the fault schedule and route table must not trade the
     original divergence class for a different (easier) one *)
  QCheck2.Test.make ~name:"shrunk chaos case reproduces the original class"
    ~count:3
    QCheck2.Gen.(int_bound 20)
    (fun index ->
      let c = Fuzz.Config_gen.case ~seed:7 ~index in
      match c.topology with
      | Fuzz.Config_gen.Fabric _ -> true (* keep the property cheap *)
      | Fuzz.Config_gen.Star _ -> (
        let findings, _ = Fuzz.Chaos.run_case ~perturb:true c in
        match Fuzz.Chaos.classes_of findings with
        | [] -> true (* perturbation has nothing to corrupt here *)
        | classes ->
          let minimized, _, _ =
            Fuzz.Chaos.shrink_case ~perturb:true c ~classes
          in
          let findings', _ = Fuzz.Chaos.run_case ~perturb:true minimized in
          List.exists
            (fun cl -> List.mem cl classes)
            (Fuzz.Chaos.classes_of findings')))

let test_chaos_reproducer_empty_lists () =
  (* pinned regression: a reproducer whose kept-index lists are empty
     serializes to bare keys; the parser must read them back as
     [Some []], not reject the line (or worse, [None]) *)
  let r =
    {
      Fuzz.Replay.Chaos.seed = 42;
      case_index = 7;
      perturb = true;
      faults = Some [];
      routes = Some [];
      classes = [ "equivalence" ];
      note = "synthetic";
    }
  in
  match Fuzz.Replay.Chaos.of_string (Fuzz.Replay.Chaos.to_string r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    check_bool "empty kept lists survive the round trip" true (r = r');
    (* and a non-empty one for good measure *)
    let r2 = { r with faults = Some [ 0; 2 ]; routes = None } in
    (match Fuzz.Replay.Chaos.of_string (Fuzz.Replay.Chaos.to_string r2) with
    | Error e -> Alcotest.fail e
    | Ok r2' -> check_bool "mixed lists round-trip" true (r2 = r2'));
    check_bool "chaos magic recognized" true
      (Fuzz.Replay.Chaos.is_chaos (Fuzz.Replay.Chaos.to_string r));
    check_bool "plain reproducers are not chaos" false
      (Fuzz.Replay.Chaos.is_chaos "# xbgp_fuzz reproducer v1\n")

(* --- shrink primitive --- *)

let test_shrink_primitive () =
  (* minimal failing subset is {3}: ddmin must find it *)
  let kept =
    Fuzz.Shrink.minimize
      ~still_fails:(fun idxs -> List.mem 3 idxs)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "found the 1-element core" true (kept = [ 3 ]);
  (* a pair that must survive together *)
  let kept =
    Fuzz.Shrink.minimize
      ~still_fails:(fun idxs -> List.mem 1 idxs && List.mem 6 idxs)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "found the 2-element core" true (List.sort compare kept = [ 1; 6 ])

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "wellformed attrs" `Quick
            test_gen_wellformed_attrs;
          Alcotest.test_case "restrict" `Quick test_restrict;
        ] );
      ( "campaign",
        [ Alcotest.test_case "80 cases clean" `Slow test_campaign_clean ] );
      ( "pipeline",
        [
          Alcotest.test_case "forced divergence fires" `Quick
            test_forced_divergence_fires;
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "reproducer round trip" `Slow
            test_reproducer_round_trip;
          Alcotest.test_case "replay rejects garbage" `Quick
            test_replay_rejects_garbage;
        ] );
      ( "shrink",
        [ Alcotest.test_case "ddmin cores" `Quick test_shrink_primitive ] );
      ( "chaos",
        [
          Alcotest.test_case "gen deterministic" `Quick
            test_chaos_gen_deterministic;
          Qc.to_alcotest prop_chaos_gen_pure;
          Alcotest.test_case "verdict deterministic" `Slow
            test_chaos_verdict_deterministic;
          Alcotest.test_case "25 cases clean" `Slow test_chaos_campaign_clean;
          Alcotest.test_case "pinned: seed 13 case 26" `Quick
            test_chaos_pinned_star;
          Alcotest.test_case "pinned: seed 2026 case 88" `Slow
            test_chaos_pinned_fabric;
          Alcotest.test_case "pinned: map-state oracle self-test" `Quick
            test_chaos_pinned_map_divergence;
          Alcotest.test_case "perturb pipeline" `Slow
            test_chaos_perturb_pipeline;
          Qc.to_alcotest prop_chaos_shrink_preserves_class;
          Alcotest.test_case "reproducer empty kept lists" `Quick
            test_chaos_reproducer_empty_lists;
        ] );
    ]
