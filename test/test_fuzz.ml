(* Tests for the differential fuzzer itself: generator determinism, a
   clean bounded campaign, and the full forced-divergence pipeline —
   oracle fires, shrinker minimizes, reproducer file round-trips and
   replays to the same findings. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- generator --- *)

let test_gen_deterministic () =
  for index = 0 to 30 do
    let a = Fuzz.Gen.case ~seed:7 ~index in
    let b = Fuzz.Gen.case ~seed:7 ~index in
    check_bool "same scenario" true (a.scenario = b.scenario);
    check_bool "same routes" true (a.routes = b.routes);
    check_bool "same frames" true (a.frames = b.frames);
    check_bool "same progs" true (a.progs = b.progs)
  done;
  (* distinct seeds should not generate identical campaigns *)
  let differs =
    List.exists
      (fun index ->
        Fuzz.Gen.case ~seed:1 ~index <> Fuzz.Gen.case ~seed:2 ~index)
      [ 0; 1; 2; 3; 4 ]
  in
  check_bool "seeds matter" true differs

let test_gen_wellformed_attrs () =
  (* differential-scenario routes must stay inside the shared native
     attribute vocabulary: no Unknown, and the mandatory three present *)
  for index = 0 to 80 do
    let c = Fuzz.Gen.case ~seed:11 ~index in
    List.iter
      (fun (r : Dataset.Ris_gen.route) ->
        let has code =
          List.exists (fun a -> Bgp.Attr.code a = code) r.attrs
        in
        check_bool "origin" true (has Bgp.Attr.code_origin);
        check_bool "as_path" true (has Bgp.Attr.code_as_path);
        check_bool "next_hop" true (has Bgp.Attr.code_next_hop);
        check_bool "no unknown" false
          (List.exists
             (fun (a : Bgp.Attr.t) ->
               match a.value with Bgp.Attr.Unknown _ -> true | _ -> false)
             r.attrs))
      c.routes
  done

let test_restrict () =
  let c = Fuzz.Gen.case ~seed:3 ~index:0 in
  let all = Fuzz.Gen.restrict c in
  check_bool "no restriction is identity" true (all = c);
  match c.routes with
  | [] -> ()
  | _ ->
    let one = Fuzz.Gen.restrict ~routes:[ 0 ] c in
    check_int "restricted to one route" 1 (List.length one.routes)

(* --- oracle: bounded clean campaign --- *)

let test_campaign_clean () =
  let s = Fuzz.Engine.campaign ~seed:7 ~cases:80 () in
  check_int "cases" 80 s.cases;
  check_int "no divergences" 0 (Fuzz.Engine.divergences s);
  check_int "no crashes" 0 (Fuzz.Engine.crashes s);
  check_int "no failing cases" 0 (List.length s.results);
  (* the scenario mix must actually exercise both differential and VM
     modes in a campaign this size *)
  check_bool "several scenarios covered" true (List.length s.scenarios >= 5)

(* --- forced divergence: oracle -> shrink -> reproducer -> replay --- *)

(* The first seed-7 case whose scenario feeds routes through the paired
   testbeds (the perturbation knob corrupts the BIRD-side Loc-RIB, so it
   only fires on differential scenarios with a non-empty table). *)
let first_differential_case () =
  let rec go index =
    if index > 500 then Alcotest.fail "no differential case in 500 indices"
    else
      let c = Fuzz.Gen.case ~seed:7 ~index in
      match c.scenario with
      | Fuzz.Gen.Plain_ebgp when c.routes <> [] -> c
      | _ -> go (index + 1)
  in
  go 0

let test_forced_divergence_fires () =
  let c = first_differential_case () in
  check_int "clean without perturbation" 0
    (List.length (Fuzz.Oracle.run c));
  let findings = Fuzz.Oracle.run ~perturb:true c in
  check_bool "perturbation produces findings" true (findings <> []);
  check_bool "findings are divergences" true
    (List.for_all
       (fun (f : Fuzz.Oracle.finding) -> f.kind = Fuzz.Oracle.Divergence)
       findings)

let test_shrink_minimizes () =
  let c = first_differential_case () in
  let minimized, routes, _, _ = Fuzz.Engine.shrink_case ~perturb:true c in
  (* dropping the first Loc-RIB entry diverges with any single route *)
  check_int "minimized to one route" 1 (List.length minimized.routes);
  (match routes with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "expected exactly one kept route index");
  check_bool "minimized case still fails" true
    (Fuzz.Oracle.run ~perturb:true minimized <> [])

let test_reproducer_round_trip () =
  let dir = Filename.temp_file "fuzzrepro" "" in
  Sys.remove dir;
  let s = Fuzz.Engine.campaign ~out:dir ~perturb:true ~seed:7 ~cases:8 () in
  check_bool "forced campaign fails somewhere" true (s.results <> []);
  List.iter
    (fun (f : Fuzz.Engine.failure) ->
      let path =
        match f.repro_path with
        | Some p -> p
        | None -> Alcotest.fail "no reproducer written"
      in
      (* the file parses back to the same reproducer *)
      (match Fuzz.Replay.load path with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check_string "same scenario" f.repro.scenario r.scenario;
        check_int "same seed" f.repro.seed r.seed;
        check_int "same case" f.repro.case_index r.case_index;
        check_bool "same kept routes" true (f.repro.routes = r.routes);
        (* replaying is deterministic: same findings, twice *)
        let run () =
          match Fuzz.Engine.replay r with
          | Error e -> Alcotest.fail e
          | Ok (_, findings) ->
            List.map (fun (x : Fuzz.Oracle.finding) -> x.detail) findings
        in
        let first = run () and second = run () in
        check_bool "replay finds the failure" true (first <> []);
        check_bool "replay is deterministic" true (first = second)))
    s.results;
  (* clean up the reproducer directory *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_replay_rejects_garbage () =
  (match Fuzz.Replay.of_string "not a reproducer" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Fuzz.Replay.of_string "# xbgp_fuzz reproducer v1\nseed x\n" with
  | Ok _ -> Alcotest.fail "accepted bad seed"
  | Error _ -> ()

(* --- shrink primitive --- *)

let test_shrink_primitive () =
  (* minimal failing subset is {3}: ddmin must find it *)
  let kept =
    Fuzz.Shrink.minimize
      ~still_fails:(fun idxs -> List.mem 3 idxs)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "found the 1-element core" true (kept = [ 3 ]);
  (* a pair that must survive together *)
  let kept =
    Fuzz.Shrink.minimize
      ~still_fails:(fun idxs -> List.mem 1 idxs && List.mem 6 idxs)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "found the 2-element core" true (List.sort compare kept = [ 1; 6 ])

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "wellformed attrs" `Quick
            test_gen_wellformed_attrs;
          Alcotest.test_case "restrict" `Quick test_restrict;
        ] );
      ( "campaign",
        [ Alcotest.test_case "80 cases clean" `Slow test_campaign_clean ] );
      ( "pipeline",
        [
          Alcotest.test_case "forced divergence fires" `Quick
            test_forced_divergence_fires;
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "reproducer round trip" `Slow
            test_reproducer_round_trip;
          Alcotest.test_case "replay rejects garbage" `Quick
            test_replay_rejects_garbage;
        ] );
      ( "shrink",
        [ Alcotest.test_case "ddmin cores" `Quick test_shrink_primitive ] );
    ]
