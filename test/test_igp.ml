(* IGP substrate tests: topology mutation and Dijkstra SPF against a
   Floyd–Warshall reference on random graphs. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool

let test_topology_basics () =
  let t = Igp.Topology.create () in
  Igp.Topology.add_link t 1 2 10;
  Igp.Topology.add_link t 2 3 5;
  check_bool "link present" true (Igp.Topology.has_link t 1 2);
  check_bool "symmetric" true (Igp.Topology.has_link t 2 1);
  check Alcotest.int "link count" 2 (Igp.Topology.link_count t);
  (* updating a metric replaces, not duplicates *)
  Igp.Topology.add_link t 1 2 20;
  check Alcotest.int "still two links" 2 (Igp.Topology.link_count t);
  check Alcotest.(option int) "updated metric" (Some 25)
    (Igp.Spf.cost t ~src:1 ~dst:3);
  Igp.Topology.remove_link t 1 2;
  check_bool "removed" false (Igp.Topology.has_link t 1 2);
  check Alcotest.(option int) "unreachable" None
    (Igp.Spf.cost t ~src:1 ~dst:3);
  Alcotest.check_raises "self loop rejected"
    (Invalid_argument "Topology.add_link: self loop") (fun () ->
      Igp.Topology.add_link t 1 1 5);
  Alcotest.check_raises "non-positive metric rejected"
    (Invalid_argument "Topology.add_link: metric must be > 0") (fun () ->
      Igp.Topology.add_link t 1 2 0)

let test_spf_paper_topology () =
  (* the §3.1 example: transatlantic links at metric 1000 *)
  let t = Igp.Topology.create () in
  Igp.Topology.add_link t 1 2 10;
  (* london-amsterdam *)
  Igp.Topology.add_link t 1 3 12;
  (* london-frankfurt *)
  Igp.Topology.add_link t 2 3 5;
  (* amsterdam-frankfurt *)
  Igp.Topology.add_link t 1 4 1000;
  Igp.Topology.add_link t 2 4 1000;
  check Alcotest.(option int) "frankfurt->london direct" (Some 12)
    (Igp.Spf.cost t ~src:3 ~dst:1);
  Igp.Topology.remove_link t 1 2;
  Igp.Topology.remove_link t 1 3;
  check
    Alcotest.(option int)
    "frankfurt->london via atlantic" (Some 2005)
    (Igp.Spf.cost t ~src:3 ~dst:1)

let test_first_hop () =
  let t = Igp.Topology.create () in
  Igp.Topology.add_link t 1 2 1;
  Igp.Topology.add_link t 2 3 1;
  Igp.Topology.add_link t 1 3 10;
  let r = Igp.Spf.run t ~src:1 in
  check Alcotest.(option int) "first hop to 3 is 2" (Some 2)
    (Hashtbl.find_opt r.first_hop 3)

(* random graph generator: n nodes, random weighted edges *)
let gen_graph =
  QCheck2.Gen.(
    let n = int_range 2 10 in
    n >>= fun n ->
    let edge = triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 20) in
    pair (return n) (list_size (int_range 0 25) edge))

let floyd_warshall n edges =
  let inf = max_int / 4 in
  let d = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0
  done;
  List.iter
    (fun (a, b, w) ->
      if a <> b then begin
        if w < d.(a).(b) then begin
          d.(a).(b) <- w;
          d.(b).(a) <- w
        end
      end)
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  d

let prop_spf_vs_floyd_warshall =
  QCheck2.Test.make ~count:300 ~name:"Dijkstra = Floyd-Warshall" gen_graph
    (fun (n, edges) ->
      let t = Igp.Topology.create () in
      for i = 0 to n - 1 do
        Igp.Topology.add_node t i
      done;
      (* keep only the *first* weight per pair, as Floyd reference does *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (a, b, w) ->
          if a <> b && not (Hashtbl.mem seen (min a b, max a b)) then begin
            Hashtbl.replace seen (min a b, max a b) ();
            Igp.Topology.add_link t a b w
          end)
        edges;
      let edges' =
        Hashtbl.fold
          (fun (a, b) () acc ->
            match List.assoc_opt b (Igp.Topology.neighbors t a) with
            | Some w -> (a, b, w) :: acc
            | None -> acc)
          seen []
      in
      let fw = floyd_warshall n edges' in
      let inf = max_int / 4 in
      let ok = ref true in
      for src = 0 to n - 1 do
        let r = Igp.Spf.run t ~src in
        for dst = 0 to n - 1 do
          let expect = if fw.(src).(dst) >= inf then None else Some fw.(src).(dst) in
          if Hashtbl.find_opt r.dist dst <> expect then ok := false
        done
      done;
      !ok)

let prop_first_hop_is_neighbor =
  QCheck2.Test.make ~count:200 ~name:"first hop is a neighbor of the source"
    gen_graph (fun (n, edges) ->
      let t = Igp.Topology.create () in
      List.iter
        (fun (a, b, w) -> if a <> b then Igp.Topology.add_link t a b w)
        edges;
      List.for_all
        (fun src ->
          let r = Igp.Spf.run t ~src in
          Hashtbl.fold
            (fun dst hop acc ->
              acc
              && (dst = src
                 || List.mem_assoc hop (Igp.Topology.neighbors t src)))
            r.first_hop true)
        (List.init n (fun i -> i)))

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "igp"
    [
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topology_basics;
          Alcotest.test_case "paper topology (3.1)" `Quick
            test_spf_paper_topology;
          Alcotest.test_case "first hop" `Quick test_first_hop;
        ] );
      ( "spf",
        [ qc prop_spf_vs_floyd_warshall; qc prop_first_hop_is_neighbor ] );
    ]
