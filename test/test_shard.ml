(* Multicore sharding tests: the SPSC queue and worker runtime that
   carry the parallel import lane, the prefix-sharded Loc-RIB's
   equivalence with the plain table (iteration order included), the
   shard-parallel safety analysis, the O(1) Adj-RIB total, a live check
   that a safe inbound chain actually engages the parallel lane, and
   the sharding equivalence oracle itself — property-swept over shard
   counts {2, 3, 8} on both hosts, with the withdrawal-racing-
   re-advertisement regression pinned across a shard boundary. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Spsc: the bounded producer/consumer channel --- *)

let test_spsc_fifo () =
  let q = Shard.Spsc.create ~capacity:16 in
  for i = 0 to 9 do
    Shard.Spsc.push q i
  done;
  check_int "depth" 10 (Shard.Spsc.depth q);
  check_int "high water" 10 (Shard.Spsc.high_water q);
  for i = 0 to 9 do
    match Shard.Spsc.pop q with
    | Some v -> check_int "fifo order" i v
    | None -> Alcotest.fail "queue closed early"
  done;
  check_int "drained" 0 (Shard.Spsc.depth q);
  Shard.Spsc.close q;
  check_bool "pop after close+drain is None" true (Shard.Spsc.pop q = None);
  check_bool "push after close raises" true
    (try
       Shard.Spsc.push q 99;
       false
     with Invalid_argument _ -> true)

let test_spsc_cross_domain () =
  (* a real producer/consumer pair over a tiny ring: order survives the
     domain boundary and the ring never exceeds its capacity *)
  let q = Shard.Spsc.create ~capacity:4 in
  let received = ref [] in
  let consumer =
    Domain.spawn (fun () ->
        let rec drain () =
          match Shard.Spsc.pop q with
          | Some v ->
            received := v :: !received;
            drain ()
          | None -> ()
        in
        drain ())
  in
  for i = 0 to 99 do
    Shard.Spsc.push q i
  done;
  Shard.Spsc.close q;
  Domain.join consumer;
  check_bool "order preserved across domains" true
    (List.rev !received = List.init 100 Fun.id);
  check_bool "ring bounded by capacity" true (Shard.Spsc.high_water q <= 4)

(* --- Runtime: per-worker FIFO, barrier, stats, poisoning --- *)

let test_runtime_fifo_and_stats () =
  let pool = Shard.Runtime.create ~workers:3 () in
  let logs = Array.make 3 [] in
  for i = 0 to 19 do
    let w = i mod 3 in
    Shard.Runtime.submit pool ~worker:w (fun () -> logs.(w) <- i :: logs.(w))
  done;
  Shard.Runtime.barrier pool;
  for w = 0 to 2 do
    let expect =
      List.filter (fun i -> i mod 3 = w) (List.init 20 Fun.id)
    in
    check_bool
      (Printf.sprintf "worker %d ran its jobs in submission order" w)
      true
      (List.rev logs.(w) = expect);
    let st = Shard.Runtime.worker_stats pool w in
    check_int "submitted" (List.length expect) st.Shard.Runtime.submitted;
    check_int "completed" (List.length expect) st.Shard.Runtime.completed;
    check_int "queue drained" 0 st.Shard.Runtime.queue_depth
  done;
  check_int "one barrier so far" 1 (Shard.Runtime.barriers pool);
  let doubled =
    Shard.Runtime.parallel_map pool (Array.init 50 Fun.id) (fun x -> 2 * x)
  in
  check_bool "parallel_map keeps item order" true
    (doubled = Array.init 50 (fun i -> 2 * i));
  Shard.Runtime.shutdown pool

let test_runtime_poison () =
  let pool = Shard.Runtime.create ~workers:2 () in
  Shard.Runtime.submit pool ~worker:0 (fun () -> failwith "boom");
  let raised =
    try
      Shard.Runtime.barrier pool;
      false
    with Failure m -> m = "boom"
  in
  check_bool "barrier re-raises the job's exception" true raised;
  Shard.Runtime.shutdown pool

(* --- Sharded_loc == plain Loc_rib, iteration order included --- *)

(* integer routes under a one-step decision view: higher wins *)
let int_view : int Rib.Decision.view =
  {
    local_pref = Fun.id;
    as_path_len = (fun _ -> 0);
    origin = (fun _ -> 0);
    med = (fun _ -> 0);
    neighbor_as = (fun _ -> 0);
    is_ebgp = (fun _ -> true);
    igp_cost = (fun _ -> 0);
    originator_id = (fun _ -> 0);
    cluster_list_len = (fun _ -> 0);
    peer_addr = (fun _ -> 0);
  }

let op_prefix k =
  let k = k land 63 in
  if k mod 3 = 0 then Bgp.Prefix.v ((k lsl 16) * 256) 16
  else Bgp.Prefix.v (0x0A00_0000 lor (k lsl 8)) 24

let test_shard_of_prefix_stable () =
  for k = 0 to 63 do
    let p = op_prefix k in
    check_int "shards:1 always maps to 0" 0
      (Shard.Sharded_loc.shard_of_prefix ~shards:1 p);
    List.iter
      (fun n ->
        let s = Shard.Sharded_loc.shard_of_prefix ~shards:n p in
        check_bool "within range" true (s >= 0 && s < n);
        check_int "deterministic" s
          (Shard.Sharded_loc.shard_of_prefix ~shards:n p))
      [ 2; 3; 8 ]
  done

let apply_ops_plain ops =
  let rib = Rib.Loc_rib.create int_view in
  List.iter
    (fun (peer, k, r) -> ignore (Rib.Loc_rib.update rib ~peer (op_prefix k) r))
    ops;
  rib

let apply_ops_sharded ~shards ops =
  let t = Shard.Sharded_loc.create ~shards int_view in
  List.iter
    (fun (peer, k, r) -> ignore (Shard.Sharded_loc.update t ~peer (op_prefix k) r))
    ops;
  t

let prop_sharded_loc_equiv =
  QCheck.Test.make ~count:200
    ~name:"sharded Loc-RIB == plain Loc-RIB (contents and iteration order)"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 60)
           (triple (int_bound 3) (int_bound 63)
              (option (int_bound 1000))))
        (int_range 2 8))
    (fun (ops, shards) ->
      let plain = apply_ops_plain ops in
      let sharded = apply_ops_sharded ~shards ops in
      let stream rib_fold =
        List.rev (rib_fold (fun p r acc -> (p, r) :: acc) [])
      in
      let sp = stream (fun f -> Rib.Loc_rib.fold_best plain f) in
      let ss = stream (fun f -> Shard.Sharded_loc.fold_best sharded f) in
      sp = ss
      && Rib.Loc_rib.count plain = Shard.Sharded_loc.count sharded
      && Array.fold_left ( + ) 0 (Shard.Sharded_loc.counts sharded)
         = Rib.Loc_rib.count plain
      && List.for_all
           (fun (peer, k, _) ->
             let p = op_prefix k in
             Rib.Loc_rib.best plain p = Shard.Sharded_loc.best sharded p
             && Rib.Loc_rib.candidates plain p
                = Shard.Sharded_loc.candidates sharded p
             && ignore peer = ())
           ops)

(* --- Adj-RIB total stays an O(1) running counter --- *)

let test_adj_total_consistent () =
  let adj = Rib.Adj_rib.create () in
  let recount () =
    List.fold_left
      (fun acc peer -> acc + Rib.Adj_rib.count_peer adj ~peer)
      0 (Rib.Adj_rib.peers adj)
  in
  let check_total ctx = check_int ctx (recount ()) (Rib.Adj_rib.total adj) in
  check_total "empty";
  for peer = 0 to 3 do
    for k = 0 to 15 do
      ignore (Rib.Adj_rib.set adj ~peer (op_prefix k) (peer + k))
    done
  done;
  check_total "after 64 sets";
  (* replacing is not an insert *)
  ignore (Rib.Adj_rib.set adj ~peer:0 (op_prefix 0) 999);
  check_total "after replace";
  ignore (Rib.Adj_rib.clear adj ~peer:1 (op_prefix 3));
  ignore (Rib.Adj_rib.clear adj ~peer:1 (op_prefix 3));
  (* double clear: second is a no-op *)
  check_total "after clear";
  Rib.Adj_rib.drop_peer adj 2;
  check_total "after drop_peer";
  check_int "total reflects the drops" 47 (Rib.Adj_rib.total adj)

(* --- the shard-parallel safety analysis --- *)

let attach_inbound vmm name prog =
  (match Xbgp.Vmm.register vmm (Xbgp.Xprog.v ~name [ ("main", prog) ]) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match
    Xbgp.Vmm.attach vmm ~program:name ~bytecode:"main"
      ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let pure_prefix_reader =
  Ebpf.Asm.(
    assemble
      [
        movi Ebpf.Insn.R1 Xbgp.Api.arg_prefix;
        call Xbgp.Api.h_get_arg;
        movi Ebpf.Insn.R0 0;
        exit_;
      ])

let test_parallel_safety_analysis () =
  (* a pure prefix-reading chain is parallel-safe *)
  let vmm = Xbgp.Vmm.create ~host:"t" () in
  attach_inbound vmm "pure" pure_prefix_reader;
  check_bool "pure prefix reader is parallel-safe" true
    (Xbgp.Vmm.shard_parallel_safe vmm Xbgp.Api.Bgp_inbound_filter);
  (* persistent scratch is shared across every shard's VMs: unsafe *)
  let vmm = Xbgp.Vmm.create ~host:"t" () in
  (match
     Xbgp.Vmm.register vmm
       (Xbgp.Xprog.v ~name:"scr" ~scratch_size:8
          [ ("main", pure_prefix_reader) ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Xbgp.Vmm.attach vmm ~program:"scr" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "scratch-carrying chain is not parallel-safe" false
    (Xbgp.Vmm.shard_parallel_safe vmm Xbgp.Api.Bgp_inbound_filter);
  (* flap_damping writes SHARED maps on import — completion-order
     visible, so the analysis must reject it (it rides the serial lane,
     which the sharding oracle separately proves invisible) *)
  match Xprogs.Registry.find_manifest "flap_damping" with
  | None -> Alcotest.fail "flap_damping manifest missing"
  | Some m ->
    let vmm = Xprogs.Registry.vmm_of_manifest ~host:"t" m in
    check_bool "shared-map-writing chain is not parallel-safe" false
      (Xbgp.Vmm.shard_parallel_safe vmm Xbgp.Api.Bgp_inbound_filter)

(* --- the parallel lane engages and commits deterministically --- *)

let test_parallel_lane_engages () =
  List.iter
    (fun host ->
      let vmm = Xbgp.Vmm.create ~host:"dut" () in
      (match Xbgp.Vmm.set_shards vmm 2 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      attach_inbound vmm "pure" pure_prefix_reader;
      let star = Scenario.Star.create ~host ~vmm ~shards:2 ~npeers:2 () in
      Scenario.Star.establish star;
      Scenario.Star.sink_announce star 0
        ~attrs:
          Bgp.Attr.
            [
              v (Origin Igp);
              v (As_path [ Seq [ 65101 ] ]);
              v (Next_hop (Scenario.Star.sink_address star 0));
            ]
        (List.init 20 op_prefix
        |> List.sort_uniq compare);
      Scenario.Star.settle star;
      let info = Scenario.Daemon.shard_info (Scenario.Star.dut star) in
      check_bool "parallel lane took the batch" true
        (info.Shard.Info.par_batches > 0);
      check_int "no serial fallback for a safe chain" 0
        info.Shard.Info.seq_batches;
      check_int "loc-rib holds the batch"
        (Array.fold_left ( + ) 0 info.Shard.Info.counts)
        (Scenario.Daemon.loc_count (Scenario.Star.dut star));
      Scenario.Star.shutdown star)
    [ `Frr; `Bird ]

(* --- the sharding equivalence oracle ---

   Each case runs the SAME star scenario under [shards = 1] and
   [shards = N], N drawn from {2, 3, 8}, and demands identical Loc-RIB,
   byte-identical per-sink UPDATE streams, provenance and merged map
   state. The generator sweeps hosts, extensions (including the
   serial-fallback chain) and churn. *)

let shard_equivalence_prop =
  QCheck.Test.make ~count:12
    ~name:"sharded daemon is byte-equivalent to single-domain"
    QCheck.(pair (int_bound 100_000) (int_bound 500))
    (fun (seed, index) ->
      Fuzz.Shard_oracle.run_case (Fuzz.Shard_oracle.case ~seed ~index) = [])

(* the commit-order trap, pinned: a withdrawal and a re-advertisement
   of the same 8-prefix block (spanning every shard under any swept
   count) land in one unsettled window, on both hosts *)
let test_wd_race_pinned () =
  let seen = Hashtbl.create 4 in
  let index = ref 0 in
  while Hashtbl.length seen < 2 && !index < 600 do
    let c = Fuzz.Shard_oracle.case ~seed:4242 ~index:!index in
    if c.churn = Fuzz.Shard_oracle.Wd_race && not (Hashtbl.mem seen c.host)
    then begin
      Hashtbl.replace seen c.host ();
      check_bool
        (Format.asprintf "equivalent: %a" Fuzz.Shard_oracle.pp_case c)
        true
        (Fuzz.Shard_oracle.run_case c = [])
    end;
    incr index
  done;
  check_int "wd_race exercised on both hosts" 2 (Hashtbl.length seen)

(* every swept shard count appears and holds *)
let test_every_shard_count () =
  let seen = Hashtbl.create 4 in
  let index = ref 0 in
  while Hashtbl.length seen < 3 && !index < 200 do
    let c = Fuzz.Shard_oracle.case ~seed:99 ~index:!index in
    if not (Hashtbl.mem seen c.shards) then begin
      Hashtbl.replace seen c.shards ();
      check_bool
        (Format.asprintf "equivalent: %a" Fuzz.Shard_oracle.pp_case c)
        true
        (Fuzz.Shard_oracle.run_case c = [])
    end;
    incr index
  done;
  check_int "shard counts 2, 3 and 8 all exercised" 3 (Hashtbl.length seen)

(* the oracle provably fires: a corrupted sharded observation must be
   reported as both a stream and a map-state divergence *)
let test_oracle_self_test () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let c = Fuzz.Shard_oracle.case ~seed:7 ~index:0 in
  let findings = Fuzz.Shard_oracle.run_case ~perturb:true c in
  check_bool "perturbation caught" true (findings <> []);
  check_bool "frame-stream divergence reported" true
    (List.exists (contains ~sub:"frame stream diverges") findings);
  check_bool "map-state divergence reported" true
    (List.exists (contains ~sub:"map state differs") findings)

let () =
  Alcotest.run "shard"
    [
      ( "spsc",
        [
          ("fifo, depth, close", `Quick, test_spsc_fifo);
          ("cross-domain order and bounding", `Quick, test_spsc_cross_domain);
        ] );
      ( "runtime",
        [
          ("per-worker fifo + stats + barrier", `Quick,
            test_runtime_fifo_and_stats);
          ("job exception poisons the barrier", `Quick, test_runtime_poison);
        ] );
      ( "sharded_loc",
        [
          ("shard_of_prefix stable and in range", `Quick,
            test_shard_of_prefix_stable);
          Qc.to_alcotest prop_sharded_loc_equiv;
        ] );
      ( "adj_rib",
        [ ("total is a consistent running counter", `Quick,
            test_adj_total_consistent) ] );
      ( "safety",
        [
          ("parallel-safety analysis verdicts", `Quick,
            test_parallel_safety_analysis);
          ("safe chain engages the parallel lane", `Quick,
            test_parallel_lane_engages);
        ] );
      ( "equivalence",
        [
          Qc.to_alcotest shard_equivalence_prop;
          ("withdrawal racing re-advertisement", `Quick, test_wd_race_pinned);
          ("every shard count", `Quick, test_every_shard_count);
          ("oracle self-test", `Quick, test_oracle_self_test);
        ] );
    ]
