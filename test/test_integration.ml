(* End-to-end integration tests: the Fig. 3 testbed and the Fig. 5 fabric,
   native vs extension, FRR-like vs BIRD-like — including the paper's
   headline property that the same bytecode yields the same routing state
   on both hosts. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let small_table n =
  Dataset.Ris_gen.generate { Dataset.Ris_gen.default_config with count = n }

(* --- plain three-router pipeline, no extensions --- *)

let test_pipeline_ebgp () =
  let tb = Scenario.Testbed.create (Scenario.Testbed.mode ~ibgp:false ()) in
  Scenario.Testbed.establish tb;
  let routes = small_table 200 in
  Scenario.Testbed.feed tb routes;
  checkb "all routes arrive downstream"
    true
    (Scenario.Testbed.run_until_downstream_has tb 200);
  (* paths must have been prepended by upstream and DUT *)
  let r = List.hd routes in
  let path =
    Option.get
      (Scenario.Daemon.best_path (Scenario.Daemon.Frr tb.downstream) r.prefix)
  in
  check Alcotest.int "AS 65000 (DUT) prepended" 65000 (List.nth path 0);
  check Alcotest.int "AS 65001 (upstream) second" 65001 (List.nth path 1)

let test_pipeline_ibgp_native_rr host () =
  let tb =
    Scenario.Testbed.create
      (Scenario.Testbed.mode ~host ~ibgp:true ~native_rr:true ())
  in
  Scenario.Testbed.establish tb;
  let routes = small_table 150 in
  Scenario.Testbed.feed tb routes;
  checkb "reflected to downstream" true
    (Scenario.Testbed.run_until_downstream_has tb 150);
  (* reflection attributes must be present *)
  let r = List.hd routes in
  let attrs =
    Option.get
      (Scenario.Daemon.best_attrs (Scenario.Daemon.Frr tb.downstream) r.prefix)
  in
  let has_originator =
    List.exists
      (fun (a : Bgp.Attr.t) ->
        match a.value with Bgp.Attr.Originator_id _ -> true | _ -> false)
      attrs
  in
  let cluster_len =
    List.find_map
      (fun (a : Bgp.Attr.t) ->
        match a.value with
        | Bgp.Attr.Cluster_list l -> Some (List.length l)
        | _ -> None)
      attrs
  in
  checkb "ORIGINATOR_ID present" true has_originator;
  check Alcotest.(option int) "CLUSTER_LIST has one entry" (Some 1) cluster_len

(* without route reflection, iBGP split horizon must block the routes *)
let test_split_horizon () =
  let tb = Scenario.Testbed.create (Scenario.Testbed.mode ~ibgp:true ()) in
  Scenario.Testbed.establish tb;
  Scenario.Testbed.feed tb (small_table 50);
  ignore (Netsim.Sched.run tb.sched ~until:(30 * 1_000_000));
  check Alcotest.int "downstream got nothing" 0
    (Scenario.Testbed.downstream_count tb)

(* --- route reflection as extension bytecode (§3.2) --- *)

let test_rr_extension host () =
  let tb =
    Scenario.Testbed.create
      (Scenario.Testbed.mode ~host ~ibgp:true
         ~manifest:Xprogs.Route_reflector.manifest ())
  in
  Scenario.Testbed.establish tb;
  let routes = small_table 150 in
  Scenario.Testbed.feed tb routes;
  checkb "extension reflects all routes" true
    (Scenario.Testbed.run_until_downstream_has tb 150)

(* the same bytecode must produce byte-identical downstream state as the
   native implementation, on both hosts *)
let test_rr_native_vs_extension host () =
  let run native =
    let tb =
      Scenario.Testbed.create
        (if native then
           Scenario.Testbed.mode ~host ~ibgp:true ~native_rr:true ()
         else
           Scenario.Testbed.mode ~host ~ibgp:true
             ~manifest:Xprogs.Route_reflector.manifest ())
    in
    Scenario.Testbed.establish tb;
    let routes = small_table 120 in
    Scenario.Testbed.feed tb routes;
    checkb "converged" true (Scenario.Testbed.run_until_downstream_has tb 120);
    List.map
      (fun (r : Dataset.Ris_gen.route) ->
        Scenario.Daemon.best_attrs (Scenario.Daemon.Frr tb.downstream) r.prefix)
      routes
  in
  let native = run true and ext = run false in
  List.iter2
    (fun a b ->
      checkb "downstream attrs identical (native vs extension)" true
        (Option.equal (List.equal Bgp.Attr.equal) a b))
    native ext

(* cross-host equivalence: FRR-like and BIRD-like DUTs running the same
   bytecode must leave downstream in the same state *)
let test_rr_cross_host_equivalence () =
  let run host =
    let tb =
      Scenario.Testbed.create
        (Scenario.Testbed.mode ~host ~ibgp:true
           ~manifest:Xprogs.Route_reflector.manifest ())
    in
    Scenario.Testbed.establish tb;
    let routes = small_table 120 in
    Scenario.Testbed.feed tb routes;
    checkb "converged" true (Scenario.Testbed.run_until_downstream_has tb 120);
    List.map
      (fun (r : Dataset.Ris_gen.route) ->
        Scenario.Daemon.best_attrs (Scenario.Daemon.Frr tb.downstream) r.prefix)
      routes
  in
  List.iter2
    (fun a b ->
      checkb "same downstream state under both hosts" true
        (Option.equal (List.equal Bgp.Attr.equal) a b))
    (run `Frr) (run `Bird)

(* --- origin validation (§3.4) --- *)

let ov_table n =
  let routes =
    Dataset.Ris_gen.generate
      { Dataset.Ris_gen.default_config with count = n; disjoint = true }
  in
  let roas =
    Dataset.Ris_gen.roas_for ~seed:7 ~valid_pct:75 ~invalid_pct:13 routes
  in
  (routes, roas)

let ov_tag_of tb (r : Dataset.Ris_gen.route) =
  match
    Scenario.Daemon.best_communities (Scenario.Daemon.Frr tb.Scenario.Testbed.downstream) r.prefix
  with
  | None -> None
  | Some cs ->
    List.find_opt (fun c -> c lsr 16 = 65535) cs

let test_ov_native_vs_extension host () =
  let routes, roas = ov_table 150 in
  let run native =
    let tb =
      Scenario.Testbed.create
        (if native then
           Scenario.Testbed.mode ~host ~ibgp:false ~native_ov_roas:roas ()
         else
           Scenario.Testbed.mode ~host ~ibgp:false
             ~manifest:Xprogs.Origin_validation.manifest
             ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
             ())
    in
    Scenario.Testbed.establish tb;
    Scenario.Testbed.feed tb routes;
    checkb "converged" true
      (Scenario.Testbed.run_until_downstream_has tb 150);
    List.map (ov_tag_of tb) routes
  in
  let native = run true and ext = run false in
  let count tag l =
    List.length (List.filter (fun t -> t = Some tag) l)
  in
  (* sanity: the split reflects the ROA generation (75/13/12) *)
  checkb "some valid" true (count 0xFFFF0001 native > 80);
  checkb "some invalid" true (count 0xFFFF0002 native > 5);
  checkb "some notfound" true (count 0xFFFF0003 native > 5);
  List.iter2
    (fun a b ->
      check
        Alcotest.(option int)
        "native and extension assign the same validation tag" a b)
    native ext

(* a route tagged invalid must still be accepted (tag, don't drop) *)
let test_ov_does_not_discard () =
  let routes, roas = ov_table 60 in
  let tb =
    Scenario.Testbed.create
      (Scenario.Testbed.mode ~ibgp:false
         ~manifest:Xprogs.Origin_validation.manifest
         ~xtras:[ ("roa_table", Xprogs.Util.encode_roa_table roas) ]
         ())
  in
  Scenario.Testbed.establish tb;
  Scenario.Testbed.feed tb routes;
  checkb "all 60 routes present downstream" true
    (Scenario.Testbed.run_until_downstream_has tb 60)

(* --- faulty extension: VMM falls back to native (§2.1) --- *)

let faulty_program =
  let open Ebpf.Asm in
  Xbgp.Xprog.v ~name:"faulty"
    [
      ( "boom",
        assemble
          [
            lddw Ebpf.Insn.R1 0xdead0000L;
            ldxw Ebpf.Insn.R0 Ebpf.Insn.R1 0;
            (* faults: unmapped *)
            exit_;
          ] );
    ]

let test_fault_falls_back_to_native () =
  let vmm = Xbgp.Vmm.create ~host:"dut" () in
  (match Xbgp.Vmm.register vmm faulty_program with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Xbgp.Vmm.attach vmm ~program:"faulty" ~bytecode:"boom"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* native default accepts; the faulting extension must not break the
     pipeline *)
  let tb =
    Scenario.Testbed.create (Scenario.Testbed.mode ~ibgp:false ())
  in
  (* graft the faulty VMM onto a fresh eBGP testbed's DUT *)
  let tb2 =
    match tb.dut with
    | Scenario.Daemon.Frr _ ->
      (* rebuild with manifest-less custom VMM: use Testbed internals *)
      tb
    | _ -> tb
  in
  ignore tb2;
  (* direct VMM check: run the point; it must fall back to default *)
  let result =
    Xbgp.Vmm.run vmm Xbgp.Api.Bgp_inbound_filter ~ops:Xbgp.Host_intf.null_ops
      ~args:Xbgp.Host_intf.Args.empty ~default:(fun () -> 42L)
  in
  check Alcotest.int64 "fell back to native default" 42L result;
  check Alcotest.int "fault recorded" 1 (Xbgp.Vmm.stats vmm).faults

(* --- Fig. 5 fabric scenarios (§3.3) --- *)

let test_fabric_plain_has_valley () =
  let f = Scenario.Fabric.build ~with_transit:true `Plain in
  Scenario.Fabric.start f;
  Scenario.Fabric.settle f 30;
  (* S2 must know the external prefix; without filtering it also keeps
     valley candidates, but at minimum everything is reachable *)
  Alcotest.(check bool) "S2 reaches EXT" true (Scenario.Fabric.reaches f "S2" "EXT");
  Alcotest.(check bool) "T20 reaches T23" true (Scenario.Fabric.reaches f "T20" "T23")

let test_fabric_xbgp_blocks_valley () =
  let f = Scenario.Fabric.build ~with_transit:true `Xbgp in
  Scenario.Fabric.start f;
  Scenario.Fabric.settle f 30;
  (* the best path to the external prefix must never contain a valley:
     S2's path must be direct (via EXT), not via a leaf *)
  (match Scenario.Fabric.path f "S2" "EXT" with
  | Some path ->
    Alcotest.(check (list int)) "S2 external path is direct" [ 64900 ] path
  | None -> Alcotest.fail "S2 lost external reachability");
  (* leaves still reach external via a spine *)
  Alcotest.(check bool) "L10 reaches EXT" true
    (Scenario.Fabric.reaches f "L10" "EXT");
  Alcotest.(check bool) "T20 reaches T23" true
    (Scenario.Fabric.reaches f "T20" "T23")

let test_fabric_bird_host () =
  (* the same valley-free bytecode governs a fabric of BIRD-like daemons *)
  let f = Scenario.Fabric.build ~host:`Bird ~with_transit:true `Xbgp in
  Scenario.Fabric.start f;
  Scenario.Fabric.settle f 30;
  (match Scenario.Fabric.path f "S2" "EXT" with
  | Some path ->
    Alcotest.(check (list int)) "S2 external path is direct" [ 64900 ] path
  | None -> Alcotest.fail "S2 lost external reachability");
  Alcotest.(check bool) "T20 reaches T23" true
    (Scenario.Fabric.reaches f "T20" "T23")

let test_fabric_partition_same_as_vs_xbgp () =
  let scenario config =
    let f = Scenario.Fabric.build config in
    Scenario.Fabric.start f;
    Scenario.Fabric.settle f 30;
    Scenario.Fabric.fail_link f "L10" "S1";
    Scenario.Fabric.fail_link f "L13" "S2";
    Scenario.Fabric.settle f 60;
    Scenario.Fabric.reaches f "L10" "L13"
  in
  (* with duplicate ASNs the fabric partitions (the paper's §3.3 pitfall) *)
  Alcotest.(check bool) "same-AS config partitions" false (scenario `Same_as);
  (* with xBGP valley-free filtering the recovery path survives *)
  Alcotest.(check bool) "xBGP config stays connected" true (scenario `Xbgp)


(* --- BGP_DECISION point: always-compare-MED (circle 3) --- *)

let med_scenario ~extension =
  Frrouting.Attr_intern.reset_intern_table ();
  let addr = Bgp.Prefix.addr_of_quad in
  let sched = Netsim.Sched.create () in
  let a1 = addr (10, 8, 0, 1)
  and a2 = addr (10, 8, 0, 2)
  and b = addr (10, 8, 0, 3) in
  let p1a, p1b = Netsim.Pipe.create sched in
  let p2a, p2b = Netsim.Pipe.create sched in
  let feeder name own own_as port =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name ~router_id:own ~local_as:own_as
         ~local_addr:own ())
      [
        { Frrouting.Bgpd.pname = "b"; remote_as = 65000; remote_addr = b;
          rr_client = false; port };
      ]
  in
  let d1 = feeder "f1" a1 65001 p1a in
  let d2 = feeder "f2" a2 65002 p2a in
  let vmm =
    if extension then
      Some
        (Xprogs.Registry.vmm_of_manifest ~host:"b"
           Xprogs.Med_compare.manifest)
    else None
  in
  let db =
    Frrouting.Bgpd.create ?vmm ~sched
      (Frrouting.Bgpd.config ~name:"b" ~router_id:b ~local_as:65000
         ~local_addr:b ())
      [
        { Frrouting.Bgpd.pname = "f1"; remote_as = 65001; remote_addr = a1;
          rr_client = false; port = p1b };
        { Frrouting.Bgpd.pname = "f2"; remote_as = 65002; remote_addr = a2;
          rr_client = false; port = p2b };
      ]
  in
  List.iter Frrouting.Bgpd.start [ d1; d2; db ];
  ignore (Netsim.Sched.run ~until:(2 * 1_000_000) sched);
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  (* same path length, different MEDs, different neighbouring ASes:
     RFC 4271 skips the MED comparison; the extension applies it *)
  let announce d nh med =
    Frrouting.Bgpd.originate d p
      [
        Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
        Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 900 ] ]);
        Bgp.Attr.v (Bgp.Attr.Next_hop nh);
        Bgp.Attr.v (Bgp.Attr.Med med);
      ]
  in
  announce d1 a1 50;
  (* f1: lower router id, higher MED *)
  announce d2 a2 10;
  (* f2: higher router id, lower MED *)
  ignore (Netsim.Sched.run ~until:(10 * 1_000_000) sched);
  match Frrouting.Bgpd.best_route db p with
  | Some r -> Frrouting.Attr_intern.neighbor_as r.attrs
  | None -> Alcotest.fail "no route"

let test_decision_point_med () =
  (* native: MED ignored across ASes, lower originator id (f1) wins *)
  check Alcotest.int "native picks f1" 65001 (med_scenario ~extension:false);
  (* extension: global MED comparison, f2 wins *)
  check Alcotest.int "extension picks f2" 65002 (med_scenario ~extension:true)

(* --- GeoLoc end-to-end across an iBGP hop (Fig. 2) --- *)

let geoloc_chain ~core_max_dist2 =
  Frrouting.Attr_intern.reset_intern_table ();
  let addr = Bgp.Prefix.addr_of_quad in
  let sched = Netsim.Sched.create () in
  let f_addr = addr (10, 7, 0, 1)
  and border_addr = addr (10, 7, 0, 2)
  and core_addr = addr (10, 7, 0, 3) in
  let fb_a, fb_b = Netsim.Pipe.create sched in
  let bc_a, bc_b = Netsim.Pipe.create sched in
  let feeder =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"feeder" ~router_id:f_addr
         ~local_as:64501 ~local_addr:f_addr ())
      [
        { Frrouting.Bgpd.pname = "border"; remote_as = 65000;
          remote_addr = border_addr; rr_client = false; port = fb_a };
      ]
  in
  let coords lat lon =
    Xprogs.Util.encode_coords
      ~lat:(Xprogs.Util.coord_of_degrees lat)
      ~lon:(Xprogs.Util.coord_of_degrees lon)
  in
  let border =
    Frrouting.Bgpd.create
      ~vmm:(Xprogs.Registry.vmm_of_manifest ~host:"border" Xprogs.Geoloc.manifest)
      ~sched
      (Frrouting.Bgpd.config ~name:"border" ~router_id:border_addr
         ~local_as:65000 ~local_addr:border_addr
         ~xtras:[ ("coords", coords (-33.87) 151.21) ]
         ())
      [
        { Frrouting.Bgpd.pname = "feeder"; remote_as = 64501;
          remote_addr = f_addr; rr_client = false; port = fb_b };
        { Frrouting.Bgpd.pname = "core"; remote_as = 65000;
          remote_addr = core_addr; rr_client = false; port = bc_a };
      ]
  in
  let core_xtras =
    ("coords", coords 48.85 2.35)
    ::
    (match core_max_dist2 with
    | Some d -> [ ("geo_max_dist2", Xprogs.Util.encode_u32 d) ]
    | None -> [])
  in
  let core =
    Frrouting.Bgpd.create
      ~vmm:(Xprogs.Registry.vmm_of_manifest ~host:"core" Xprogs.Geoloc.manifest)
      ~sched
      (Frrouting.Bgpd.config ~name:"core" ~router_id:core_addr
         ~local_as:65000 ~local_addr:core_addr ~xtras:core_xtras ())
      [
        { Frrouting.Bgpd.pname = "border"; remote_as = 65000;
          remote_addr = border_addr; rr_client = false; port = bc_b };
      ]
  in
  List.iter Frrouting.Bgpd.start [ feeder; border; core ];
  ignore (Netsim.Sched.run ~until:(2 * 1_000_000) sched);
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Frrouting.Bgpd.originate feeder p
    [
      Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
      Bgp.Attr.v (Bgp.Attr.As_path []);
      Bgp.Attr.v (Bgp.Attr.Next_hop f_addr);
    ];
  ignore (Netsim.Sched.run ~until:(10 * 1_000_000) sched);
  (border, core, p)

let test_geoloc_end_to_end () =
  let border, core, p = geoloc_chain ~core_max_dist2:None in
  (* the border stamped its own (Sydney) coordinates at import *)
  (match Frrouting.Bgpd.best_route border p with
  | Some r -> checkb "border stamped" true (Frrouting.Attr_intern.has_extra r.attrs 42)
  | None -> Alcotest.fail "border lost the route");
  (* the core recovered the attribute from the raw iBGP update even
     though its native parser drops unknown attributes *)
  match Frrouting.Bgpd.best_route core p with
  | Some r -> (
    checkb "core recovered GeoLoc" true
      (Frrouting.Attr_intern.has_extra r.attrs 42);
    match List.find_opt (fun (c, _, _) -> c = 42) r.attrs.extra with
    | Some (_, _, payload) ->
      let lat =
        Bgp.Attr.(get_u32 (Bytes.of_string payload) 0 8)
      in
      check Alcotest.int "Sydney latitude travelled over iBGP"
        (Xprogs.Util.coord_of_degrees (-33.87))
        lat
    | None -> Alcotest.fail "payload missing")
  | None -> Alcotest.fail "core lost the route"

let test_geoloc_distance_filter_end_to_end () =
  (* Sydney is ~180 fixed-point degrees from Paris; a 30-degree budget
     must reject the route at the core *)
  let _, core, p =
    geoloc_chain ~core_max_dist2:(Some (30_000 * 30_000))
  in
  checkb "core filtered the far route" true
    (Frrouting.Bgpd.best_route core p = None)

(* --- two programs chained at the same insertion point --- *)

let test_two_programs_chained () =
  let routes, roas = ov_table 80 in
  (* geoloc import runs first (order 0, defers), origin validation second *)
  let manifest =
    Xbgp.Manifest.v
      ~programs:[ "geoloc"; "origin_validation" ]
      ~attachments:
        [
          {
            program = "geoloc";
            bytecode = "import";
            point = Xbgp.Api.Bgp_inbound_filter;
            order = 0;
          };
          {
            program = "origin_validation";
            bytecode = "init";
            point = Xbgp.Api.Bgp_init;
            order = 0;
          };
          {
            program = "origin_validation";
            bytecode = "import";
            point = Xbgp.Api.Bgp_inbound_filter;
            order = 1;
          };
        ]
  in
  let coords =
    Xprogs.Util.encode_coords
      ~lat:(Xprogs.Util.coord_of_degrees 50.85)
      ~lon:(Xprogs.Util.coord_of_degrees 4.35)
  in
  let tb =
    Scenario.Testbed.create
      (Scenario.Testbed.mode ~ibgp:false ~manifest
         ~xtras:
           [
             ("roa_table", Xprogs.Util.encode_roa_table roas);
             ("coords", coords);
           ]
         ())
  in
  Scenario.Testbed.establish tb;
  Scenario.Testbed.feed tb routes;
  checkb "converged" true (Scenario.Testbed.run_until_downstream_has tb 80);
  (* both programs acted: OV tags present on every route, and the DUT's
     own Loc-RIB carries the GeoLoc stamp (stripped on eBGP export) *)
  let tagged =
    List.for_all
      (fun (r : Dataset.Ris_gen.route) ->
        match
          Scenario.Daemon.best_communities
            (Scenario.Daemon.Frr tb.downstream) r.prefix
        with
        | Some cs -> List.exists (fun c -> c lsr 16 = 65535) cs
        | None -> false)
      routes
  in
  checkb "OV tags on all routes" true tagged;
  let r0 = (List.hd routes).prefix in
  (match tb.dut with
  | Scenario.Daemon.Frr dut -> (
    match Frrouting.Bgpd.best_route dut r0 with
    | Some r -> checkb "GeoLoc stamped on DUT" true (Frrouting.Attr_intern.has_extra r.attrs 42)
    | None -> Alcotest.fail "route missing on DUT")
  | _ -> Alcotest.fail "expected FRR DUT");
  let st = Xbgp.Vmm.stats (Option.get tb.dut_vmm) in
  checkb "chaining happened (next calls)" true (st.next_calls >= 80)


(* --- fault injection at every insertion point --- *)

(* a program whose bytecode faults (unmapped load) at whatever point it
   is attached to; the VMM must fall back to native processing and the
   pipeline must behave exactly as if no extension were loaded *)
let crash_everywhere_manifest point =
  let open Ebpf.Asm in
  let boom =
    assemble [ lddw Ebpf.Insn.R1 0xdead0000L; ldxw Ebpf.Insn.R0 Ebpf.Insn.R1 0; exit_ ]
  in
  let prog = Xbgp.Xprog.v ~name:"boom" [ ("boom", boom) ] in
  let manifest =
    Xbgp.Manifest.v ~programs:[ "boom" ]
      ~attachments:
        [ { program = "boom"; bytecode = "boom"; point; order = 0 } ]
  in
  (prog, manifest)

let test_fault_injection_per_point () =
  List.iter
    (fun point ->
      let prog, manifest = crash_everywhere_manifest point in
      let vmm = Xbgp.Vmm.create ~host:"dut" () in
      (match Xbgp.Vmm.register vmm prog with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match Xbgp.Manifest.load vmm ~registry:(fun _ -> None)
               { manifest with programs = [] }
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* build an eBGP testbed whose DUT carries the faulting VMM; we
         bypass Testbed's manifest plumbing by supplying a registry *)
      let registry name = if name = "boom" then Some prog else None in
      ignore registry;
      let tb =
        Scenario.Testbed.create (Scenario.Testbed.mode ~ibgp:false ())
      in
      (* graft the attachments onto a fresh VMM-equipped DUT instead:
         simplest is to rebuild through the manifest + custom registry *)
      ignore tb;
      let vmm2 = Xbgp.Vmm.create ~host:"dut" () in
      (match Xbgp.Manifest.load vmm2 ~registry manifest with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* run a raw VMM chain at that point: fault -> default *)
      let got =
        Xbgp.Vmm.run vmm2 point ~ops:Xbgp.Host_intf.null_ops
          ~args:Xbgp.Host_intf.Args.empty ~default:(fun () -> 123L)
      in
      check Alcotest.int64 (Xbgp.Api.point_name point ^ " falls back") 123L
        got)
    Xbgp.Api.
      [
        Bgp_receive_message;
        Bgp_inbound_filter;
        Bgp_decision;
        Bgp_outbound_filter;
        Bgp_encode_message;
      ]

(* the stronger end-to-end variant: a DUT with faulting bytecode at all
   five points still converges to exactly the native result *)
let test_fault_injection_end_to_end () =
  let open Ebpf.Asm in
  let boom =
    assemble
      [ lddw Ebpf.Insn.R1 0xdead0000L; ldxw Ebpf.Insn.R0 Ebpf.Insn.R1 0; exit_ ]
  in
  let prog =
    Xbgp.Xprog.v ~name:"boom"
      [ ("boom", boom) ]
  in
  let manifest =
    Xbgp.Manifest.v ~programs:[ "boom" ]
      ~attachments:
        (List.map
           (fun point ->
             { Xbgp.Manifest.program = "boom"; bytecode = "boom"; point;
               order = 0 })
           Xbgp.Api.
             [
               Bgp_receive_message;
               Bgp_inbound_filter;
               Bgp_decision;
               Bgp_outbound_filter;
               Bgp_encode_message;
             ])
  in
  (* sneak the program into the resolution path via a local registry *)
  let saved = Xprogs.Registry.find in
  ignore saved;
  let routes = small_table 60 in
  let run_with_vmm use_boom =
    let tb =
      Scenario.Testbed.create (Scenario.Testbed.mode ~ibgp:false ())
    in
    ignore tb;
    (* rebuild DUT manually is heavy; instead drive a fresh testbed whose
       manifest resolves through a custom registry *)
    let vmm = Xbgp.Vmm.create ~host:"dut" () in
    if use_boom then (
      match
        Xbgp.Manifest.load vmm
          ~registry:(fun n -> if n = "boom" then Some prog else None)
          manifest
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
    let sched = Netsim.Sched.create () in
    Frrouting.Attr_intern.reset_intern_table ();
    let addr = Bgp.Prefix.addr_of_quad in
    let up_addr = addr (10, 0, 0, 1)
    and dut_addr = addr (10, 0, 0, 2)
    and down_addr = addr (10, 0, 0, 3) in
    let l1_up, l1_dut = Netsim.Pipe.create sched in
    let l2_dut, l2_down = Netsim.Pipe.create sched in
    let frr_peer pname remote_as remote_addr port =
      { Frrouting.Bgpd.pname; remote_as; remote_addr; rr_client = false;
        port }
    in
    let upstream =
      Frrouting.Bgpd.create ~sched
        (Frrouting.Bgpd.config ~name:"upstream" ~router_id:up_addr
           ~local_as:65001 ~local_addr:up_addr ())
        [ frr_peer "dut" 65000 dut_addr l1_up ]
    in
    let dut =
      Frrouting.Bgpd.create ~vmm ~sched
        (Frrouting.Bgpd.config ~name:"dut" ~router_id:dut_addr
           ~local_as:65000 ~local_addr:dut_addr ())
        [
          frr_peer "upstream" 65001 up_addr l1_dut;
          frr_peer "downstream" 65002 down_addr l2_dut;
        ]
    in
    let downstream =
      Frrouting.Bgpd.create ~sched
        (Frrouting.Bgpd.config ~name:"downstream" ~router_id:down_addr
           ~local_as:65002 ~local_addr:down_addr ())
        [ frr_peer "dut" 65000 dut_addr l2_down ]
    in
    List.iter Frrouting.Bgpd.start [ upstream; dut; downstream ];
    ignore (Netsim.Sched.run ~until:(2 * 1_000_000) sched);
    List.iter
      (fun (r : Dataset.Ris_gen.route) ->
        Frrouting.Bgpd.originate upstream r.prefix r.attrs)
      routes;
    ignore (Netsim.Sched.run ~until:(30 * 1_000_000) sched);
    ( List.map
        (fun (r : Dataset.Ris_gen.route) ->
          Frrouting.Bgpd.best_attrs downstream r.prefix)
        routes,
      Xbgp.Vmm.stats vmm )
  in
  let native, _ = run_with_vmm false in
  let faulty, stats = run_with_vmm true in
  checkb "faults were actually hit" true (stats.faults > 100);
  List.iter2
    (fun a b ->
      checkb "state identical despite faulting extensions" true
        (Option.equal (List.equal Bgp.Attr.equal) a b))
    native faulty


(* failure then repair: the fabric heals and reconverges *)
let test_fabric_repair_reconverges () =
  let f = Scenario.Fabric.build `Xbgp in
  Scenario.Fabric.start f;
  Scenario.Fabric.settle f 30;
  checkb "initially reachable" true (Scenario.Fabric.reaches f "L10" "L13");
  Scenario.Fabric.fail_link f "L10" "S1";
  Scenario.Fabric.fail_link f "L10" "S2";
  (* both uplinks gone: the only way out is down through a ToR and back
     up via L11 — an internal-destination valley, which the extension
     deliberately admits (partition avoidance) *)
  Scenario.Fabric.settle f 60;
  (match Scenario.Fabric.path f "L10" "L13" with
  | Some path ->
    checkb "reaches via a ToR detour" true (List.length path >= 4)
  | None -> Alcotest.fail "L10 lost L13 despite the ToR detour");
  Scenario.Fabric.repair_link f "L10" "S1";
  Scenario.Fabric.settle f 60;
  checkb "reconverged after repair" true
    (Scenario.Fabric.reaches f "L10" "L13");
  (match Scenario.Fabric.path f "L10" "L13" with
  | Some path ->
    check Alcotest.(list int) "direct path restored" [ 65000; 65013 ] path
  | None -> Alcotest.fail "no path after repair")


(* the add_route_to_rib helper: an init bytecode injects a backup route *)
let test_rib_add_helper host () =
  let open Ebpf.Asm in
  (* add_route_to_rib(addr=198.51.100.0, len=24, nexthop=10.0.0.2) *)
  let inject =
    assemble
      [
        lddw Ebpf.Insn.R1 0xC6336400L;
        movi Ebpf.Insn.R2 24;
        lddw Ebpf.Insn.R3 0x0A000002L;
        call Xbgp.Api.h_rib_add;
        exit_;
      ]
  in
  let prog = Xbgp.Xprog.v ~name:"injector" [ ("init", inject) ] in
  let manifest =
    Xbgp.Manifest.v ~programs:[ "injector" ]
      ~attachments:
        [
          { program = "injector"; bytecode = "init";
            point = Xbgp.Api.Bgp_init; order = 0 };
        ]
  in
  let vmm = Xbgp.Vmm.create ~host:"dut" () in
  (match
     Xbgp.Manifest.load vmm
       ~registry:(fun n -> if n = "injector" then Some prog else None)
       manifest
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* hand-build a testbed so we can pass the custom VMM *)
  Frrouting.Attr_intern.reset_intern_table ();
  let sched = Netsim.Sched.create () in
  let addr = Bgp.Prefix.addr_of_quad in
  let d_addr = addr (10, 0, 0, 2) and s_addr = addr (10, 0, 0, 3) in
  let pa, pb = Netsim.Pipe.create sched in
  let peer_conf_frr =
    { Frrouting.Bgpd.pname = "sink"; remote_as = 65002;
      remote_addr = s_addr; rr_client = false; port = pa }
  in
  let dut =
    match host with
    | `Frr ->
      Scenario.Daemon.Frr
        (Frrouting.Bgpd.create ~vmm ~sched
           (Frrouting.Bgpd.config ~name:"dut" ~router_id:d_addr
              ~local_as:65000 ~local_addr:d_addr ())
           [ peer_conf_frr ])
    | `Bird ->
      Scenario.Daemon.Bird
        (Bird.Bgpd.create ~vmm ~sched
           (Bird.Bgpd.config ~name:"dut" ~router_id:d_addr ~local_as:65000
              ~local_addr:d_addr ())
           [
             { Bird.Bgpd.pname = "sink"; remote_as = 65002;
               remote_addr = s_addr; rr_client = false; port = pa };
           ])
  in
  let sink =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"sink" ~router_id:s_addr ~local_as:65002
         ~local_addr:s_addr ())
      [
        { Frrouting.Bgpd.pname = "dut"; remote_as = 65000;
          remote_addr = d_addr; rr_client = false; port = pb };
      ]
  in
  Scenario.Daemon.start dut;
  Frrouting.Bgpd.start sink;
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);
  let p = Bgp.Prefix.of_string "198.51.100.0/24" in
  checkb "route injected into the DUT's Loc-RIB" true
    (Scenario.Daemon.has_route dut p);
  checkb "and advertised to the peer" true
    (Frrouting.Bgpd.best_route sink p <> None)

(* --- telemetry threading: one registry sees the whole deployment --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_telemetry_end_to_end () =
  let tele = Telemetry.create ~enabled:true ~ring_capacity:65536 () in
  let tb =
    Scenario.Testbed.create
      (Scenario.Testbed.mode ~host:`Bird ~ibgp:true
         ~manifest:Xprogs.Route_reflector.manifest ~telemetry:tele ())
  in
  Scenario.Testbed.establish tb;
  let routes = small_table 100 in
  Scenario.Testbed.feed tb routes;
  checkb "converged" true (Scenario.Testbed.run_until_downstream_has tb 100);
  let vmm = Option.get tb.dut_vmm in
  let stats = Xbgp.Vmm.stats vmm in
  checkb "extensions actually ran" true (stats.runs > 0);
  (* every Vmm.run opened exactly one span *)
  check Alcotest.int "no spans dropped" 0 (Telemetry.dropped_spans tele);
  let run_spans =
    List.filter
      (fun (s : Telemetry.Span.t) -> s.name = "xbgp.run")
      (Telemetry.spans tele)
  in
  check Alcotest.int "one span per Vmm.run" stats.runs
    (List.length run_spans);
  List.iter
    (fun (s : Telemetry.Span.t) ->
      List.iter
        (fun k ->
          checkb (Printf.sprintf "span carries %S" k) true
            (Telemetry.Span.tag s k <> None))
        [ "host"; "point"; "program"; "engine"; "insns"; "outcome" ])
    run_spans;
  (* every layer reported into the one registry *)
  let names = Telemetry.metric_names tele in
  List.iter
    (fun n ->
      checkb (Printf.sprintf "family %S registered" n) true (List.mem n names))
    [
      "bgp_updates_rx_total"; "bgp_updates_tx_total"; "bgp_decisions_total";
      "bgp_session_transitions_total"; "net_tx_bytes_total";
      "net_in_flight_chunks"; "xbgp_runs_total"; "xbgp_run_insns";
      "xbgp_helper_calls_total";
    ];
  (* the daemon stats snapshot is the same counters *)
  check Alcotest.int "snapshot matches registry counter"
    (Telemetry.counter_value tele ~name:"bgp_updates_rx_total"
       ~labels:[ ("daemon", "dut"); ("impl", "bird") ])
    (Scenario.Daemon.updates_rx tb.dut);
  (* and both exporters render it *)
  let prom = Telemetry.to_prometheus tele in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "prometheus has %S" needle) true
        (contains ~needle prom))
    [ "xbgp_runs_total"; "bgp_updates_rx_total{daemon=\"dut\",impl=\"bird\"}" ];
  let trace = Telemetry.to_chrome_trace tele in
  checkb "trace has events" true (contains ~needle:"\"xbgp.run\"" trace);
  let table = Telemetry.profile_table tele in
  checkb "profile table has the program" true
    (contains ~needle:"route_reflector" table)

(* with no registry passed, nothing is recorded and nothing leaks
   between testbeds *)
let test_telemetry_default_off () =
  let tb =
    Scenario.Testbed.create
      (Scenario.Testbed.mode ~ibgp:true
         ~manifest:Xprogs.Route_reflector.manifest ())
  in
  Scenario.Testbed.establish tb;
  Scenario.Testbed.feed tb (small_table 20);
  checkb "converged" true (Scenario.Testbed.run_until_downstream_has tb 20);
  checkb "testbed registry is disabled" false
    (Telemetry.enabled tb.telemetry);
  check Alcotest.int "no spans recorded" 0
    (List.length (Telemetry.spans tb.telemetry))

(* determinism: the whole simulated system is a pure function of the
   seed — two identical runs end in identical downstream state *)
let test_determinism () =
  let run () =
    let tb =
      Scenario.Testbed.create
        (Scenario.Testbed.mode ~ibgp:true
           ~manifest:Xprogs.Route_reflector.manifest ())
    in
    Scenario.Testbed.establish tb;
    let routes = small_table 100 in
    Scenario.Testbed.feed tb routes;
    checkb "converged" true (Scenario.Testbed.run_until_downstream_has tb 100);
    ( Netsim.Sched.now tb.sched,
      List.map
        (fun (r : Dataset.Ris_gen.route) ->
          Scenario.Daemon.best_attrs (Scenario.Daemon.Frr tb.downstream)
            r.prefix)
        routes )
  in
  let t1, s1 = run () in
  let t2, s2 = run () in
  check Alcotest.int "identical simulated clock" t1 t2;
  List.iter2
    (fun a b ->
      checkb "identical downstream state" true
        (Option.equal (List.equal Bgp.Attr.equal) a b))
    s1 s2

let tests =
  [
    Alcotest.test_case "pipeline: eBGP end-to-end" `Quick test_pipeline_ebgp;
    Alcotest.test_case "pipeline: native RR (FRR)" `Quick
      (test_pipeline_ibgp_native_rr `Frr);
    Alcotest.test_case "pipeline: native RR (BIRD)" `Quick
      (test_pipeline_ibgp_native_rr `Bird);
    Alcotest.test_case "pipeline: iBGP split horizon" `Quick
      test_split_horizon;
    Alcotest.test_case "RR extension (FRR)" `Quick (test_rr_extension `Frr);
    Alcotest.test_case "RR extension (BIRD)" `Quick (test_rr_extension `Bird);
    Alcotest.test_case "RR: native ≡ extension (FRR)" `Quick
      (test_rr_native_vs_extension `Frr);
    Alcotest.test_case "RR: native ≡ extension (BIRD)" `Quick
      (test_rr_native_vs_extension `Bird);
    Alcotest.test_case "RR: same bytecode on both hosts" `Quick
      test_rr_cross_host_equivalence;
    Alcotest.test_case "OV: native ≡ extension (FRR)" `Quick
      (test_ov_native_vs_extension `Frr);
    Alcotest.test_case "OV: native ≡ extension (BIRD)" `Quick
      (test_ov_native_vs_extension `Bird);
    Alcotest.test_case "OV: tags but does not discard" `Quick
      test_ov_does_not_discard;
    Alcotest.test_case "faulty bytecode falls back to native" `Quick
      test_fault_falls_back_to_native;
    Alcotest.test_case "fabric: plain is fully reachable" `Quick
      test_fabric_plain_has_valley;
    Alcotest.test_case "fabric: xBGP blocks external valley" `Quick
      test_fabric_xbgp_blocks_valley;
    Alcotest.test_case "fabric: BIRD host, same bytecode" `Quick
      test_fabric_bird_host;
    Alcotest.test_case "fabric: partition vs recovery (Fig. 5)" `Quick
      test_fabric_partition_same_as_vs_xbgp;
    Alcotest.test_case "decision point: always-compare-MED" `Quick
      test_decision_point_med;
    Alcotest.test_case "GeoLoc end-to-end (Fig. 2)" `Quick
      test_geoloc_end_to_end;
    Alcotest.test_case "GeoLoc distance filter" `Quick
      test_geoloc_distance_filter_end_to_end;
    Alcotest.test_case "two programs chained at one point" `Quick
      test_two_programs_chained;
    Alcotest.test_case "fault injection per point" `Quick
      test_fault_injection_per_point;
    Alcotest.test_case "fault injection end-to-end" `Quick
      test_fault_injection_end_to_end;
    Alcotest.test_case "fabric: repair reconverges" `Quick
      test_fabric_repair_reconverges;
    Alcotest.test_case "add_route_to_rib helper (FRR)" `Quick
      (test_rib_add_helper `Frr);
    Alcotest.test_case "add_route_to_rib helper (BIRD)" `Quick
      (test_rib_add_helper `Bird);
    Alcotest.test_case "whole-system determinism" `Quick test_determinism;
    Alcotest.test_case "telemetry: spans and counters end-to-end" `Quick
      test_telemetry_end_to_end;
    Alcotest.test_case "telemetry: off by default" `Quick
      test_telemetry_default_off;
  ]

let () = Alcotest.run "integration" [ ("integration", tests) ]
