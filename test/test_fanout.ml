(* Update-group export engine tests: RFC 4271 4096-byte framing at the
   codec boundary, the engine's event semantics (split horizon, late
   joiners, rekey split/merge) with their churn telemetry, a model-based
   property checking the grouped event streams against a naive per-peer
   model, and the star-level property that grouped and per-peer export
   are externally indistinguishable on both hosts. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- RFC 4271 §4: split_update_raw framing boundaries --- *)

(* distinct /32s: 5 wire bytes each, so frame arithmetic is exact *)
let pfx i = Bgp.Prefix.v (0x0100_0000 + i) 32

(* raw path-attribute bytes of exactly [n] total wire bytes: one unknown
   optional-transitive attribute (short or extended length form) *)
let attr_pad n =
  if n < 3 then invalid_arg "attr_pad";
  let b = Bytes.create n in
  if n <= 258 then begin
    Bytes.set_uint8 b 0 0xC0;
    Bytes.set_uint8 b 1 200;
    Bytes.set_uint8 b 2 (n - 3)
  end
  else begin
    Bytes.set_uint8 b 0 0xD0;
    (* extended length *)
    Bytes.set_uint8 b 1 200;
    Bytes.set_uint16_be b 2 (n - 4)
  end;
  b

let decode_all frames =
  List.map
    (fun f ->
      match Bgp.Message.decode f with
      | Bgp.Message.Update u -> u
      | _ -> Alcotest.fail "split frame is not an UPDATE")
    frames

let test_split_exact_fit () =
  (* 19 header + 2 wd-len + 2 attr-len + 3 attrs + 814 * 5 = 4096 *)
  let nlri = List.init 814 pfx in
  let frames =
    Bgp.Message.split_update_raw ~withdrawn:[] ~attr_bytes:(attr_pad 3) ~nlri
  in
  check_int "one frame" 1 (List.length frames);
  check_int "exactly max_size" Bgp.Message.max_size
    (Bytes.length (List.hd frames));
  let u = List.hd (decode_all frames) in
  check_bool "nlri order preserved" true (u.nlri = nlri)

let test_split_one_over () =
  let nlri = List.init 815 pfx in
  let frames =
    Bgp.Message.split_update_raw ~withdrawn:[] ~attr_bytes:(attr_pad 3) ~nlri
  in
  check_int "two frames" 2 (List.length frames);
  List.iter
    (fun f ->
      check_bool "within max_size" true
        (Bytes.length f <= Bgp.Message.max_size))
    frames;
  let us = decode_all frames in
  check_bool "concatenation preserves order" true
    (List.concat_map (fun (u : Bgp.Message.update) -> u.nlri) us = nlri);
  (* every NLRI frame must repeat the attributes *)
  let ref_attrs =
    match
      Bgp.Message.decode
        (Bgp.Message.encode_update_raw ~withdrawn:[] ~attr_bytes:(attr_pad 3)
           ~nlri:[ pfx 0 ])
    with
    | Bgp.Message.Update u -> u.attrs
    | _ -> assert false
  in
  List.iter
    (fun (u : Bgp.Message.update) ->
      check_bool "attrs repeated" true (u.attrs = ref_attrs))
    us

let test_split_withdrawn_only () =
  (* withdrawn capacity is 4073 bytes: 814 /32s fit, 815 split *)
  let wd = List.init 815 pfx in
  let frames =
    Bgp.Message.split_update_raw ~withdrawn:wd ~attr_bytes:Bytes.empty ~nlri:[]
  in
  check_int "two frames" 2 (List.length frames);
  let us = decode_all frames in
  check_bool "withdrawn order preserved" true
    (List.concat_map (fun (u : Bgp.Message.update) -> u.withdrawn) us = wd);
  List.iter
    (fun (u : Bgp.Message.update) ->
      check_bool "no attrs on withdrawn frames" true (u.attrs = []);
      check_bool "no nlri on withdrawn frames" true (u.nlri = []))
    us

let test_split_mixed () =
  let wd = List.init 10 (fun i -> pfx (1000 + i)) in
  let nlri = List.init 10 pfx in
  let frames =
    Bgp.Message.split_update_raw ~withdrawn:wd ~attr_bytes:(attr_pad 8) ~nlri
  in
  check_int "withdrawn frame first, then nlri frame" 2 (List.length frames);
  let us = decode_all frames in
  check_bool "withdrawn-only frames lead" true
    ((List.hd us).withdrawn = wd && (List.hd us).nlri = []);
  check_bool "nlri follows" true
    ((List.nth us 1).nlri = nlri && (List.nth us 1).withdrawn = [])

let test_split_attrs_too_big () =
  (* 4071 attribute bytes leave 2 bytes of room: no /32 can ever fit *)
  let raised =
    try
      ignore
        (Bgp.Message.split_update_raw ~withdrawn:[]
           ~attr_bytes:(attr_pad 4071) ~nlri:[ pfx 0 ]);
      false
    with Bgp.Message.Parse_error _ -> true
  in
  check_bool "oversized attrs raise" true raised;
  (* but with no NLRI to carry there is nothing to split *)
  check_int "no prefixes, no frames" 0
    (List.length
       (Bgp.Message.split_update_raw ~withdrawn:[] ~attr_bytes:(attr_pad 4071)
          ~nlri:[]))

let test_split_empty () =
  check_int "both lists empty" 0
    (List.length
       (Bgp.Message.split_update_raw ~withdrawn:[] ~attr_bytes:Bytes.empty
          ~nlri:[]))

let split_roundtrip_prop =
  QCheck.Test.make ~count:120 ~name:"split_update_raw round-trips within 4096"
    QCheck.(triple (int_bound 1200) (int_bound 1200) (int_range 3 258))
    (fun (nwd, nnlri, attr_n) ->
      let wd = List.init nwd (fun i -> pfx (100_000 + i)) in
      let nlri = List.init nnlri pfx in
      let attr_bytes = attr_pad attr_n in
      let frames = Bgp.Message.split_update_raw ~withdrawn:wd ~attr_bytes ~nlri in
      let us = decode_all frames in
      List.for_all (fun f -> Bytes.length f <= Bgp.Message.max_size) frames
      && List.concat_map (fun (u : Bgp.Message.update) -> u.withdrawn) us = wd
      && List.concat_map (fun (u : Bgp.Message.update) -> u.nlri) us = nlri
      && (* withdrawn-only frames strictly precede NLRI-carrying ones *)
      fst
        (List.fold_left
           (fun (ok, seen_nlri) (u : Bgp.Message.update) ->
             (ok && not (seen_nlri && u.withdrawn <> []), seen_nlri || u.nlri <> []))
           (true, false) us))

(* --- the update-group engine --- *)

module Ug = Rib.Update_group

let mk () =
  let tele = Telemetry.create ~enabled:true () in
  (tele, Ug.create ~telemetry:tele ~daemon:"t" ~equal:Int.equal ())

let cval tele name =
  Telemetry.counter_value tele ~name ~labels:[ ("daemon", "t") ]

let gauge_active tele =
  Telemetry.Gauge.value
    (Telemetry.gauge tele ~name:"bgp_update_groups_active"
       ~labels:[ ("daemon", "t") ] ())

let p0 = pfx 0
let p1 = pfx 1

let test_join_leave_telemetry () =
  let tele, t = mk () in
  let g = Ug.join t ~peer:0 ~key:"a" in
  check_int "one group" 1 (Ug.group_count t);
  check_int "gauge tracks" 1 (gauge_active tele);
  check_int "creating is not a merge" 0 (cval tele "bgp_group_merges_total");
  let g' = Ug.join t ~peer:1 ~key:"a" in
  check_bool "same group" true (Ug.key g = Ug.key g');
  check_int "joining an existing group is a merge" 1
    (cval tele "bgp_group_merges_total");
  check_bool "members ascending" true (Ug.members g = [ 0; 1 ]);
  (* re-join under the same key is a no-op *)
  ignore (Ug.join t ~peer:1 ~key:"a");
  check_int "re-join no-op" 1 (cval tele "bgp_group_merges_total");
  Ug.leave t ~peer:0;
  Ug.leave t ~peer:1;
  check_int "empty groups deleted" 0 (Ug.group_count t);
  check_int "gauge back to zero" 0 (gauge_active tele)

let test_route_update_broadcast () =
  let _, t = mk () in
  let g = Ug.join t ~peer:0 ~key:"a" in
  ignore (Ug.join t ~peer:1 ~key:"a");
  ignore (Ug.join t ~peer:2 ~key:"a");
  Ug.route_update t g p0 (Some (7, -1));
  (match Ug.take_classes g with
  | [ (ms, [], [ (p, 7) ]) ] ->
    check_bool "all members one class" true (ms = [ 0; 1; 2 ]);
    check_bool "the prefix" true (Bgp.Prefix.equal p p0)
  | _ -> Alcotest.fail "expected one broadcast class");
  (* unchanged export: suppressed *)
  Ug.route_update t g p0 (Some (7, -1));
  check_int "suppressed" 0 (List.length (Ug.take_classes g));
  (* changed export: re-advertised *)
  Ug.route_update t g p0 (Some (8, -1));
  (match Ug.take_classes g with
  | [ (_, [], [ (_, 8) ]) ] -> ()
  | _ -> Alcotest.fail "expected re-advertisement");
  (* withdrawal *)
  Ug.route_update t g p0 None;
  (match Ug.take_classes g with
  | [ (ms, [ p ], []) ] ->
    check_bool "broadcast withdraw" true
      (ms = [ 0; 1; 2 ] && Bgp.Prefix.equal p p0)
  | _ -> Alcotest.fail "expected one withdraw class");
  Ug.route_update t g p0 None;
  check_int "double withdraw is silent" 0 (List.length (Ug.take_classes g))

let class_of classes m =
  List.find (fun (ms, _, _) -> List.mem m ms) classes

let test_split_horizon_classes () =
  let _, t = mk () in
  let g = Ug.join t ~peer:0 ~key:"a" in
  ignore (Ug.join t ~peer:1 ~key:"a");
  ignore (Ug.join t ~peer:2 ~key:"a");
  (* peer 1 sourced the route: everyone else advertises *)
  Ug.route_update t g p0 (Some (5, 1));
  let classes = Ug.take_classes g in
  let _, wds, advs = class_of classes 0 in
  check_bool "non-source members advertise" true
    (wds = [] && advs = [ (p0, 5) ]);
  let _, wds1, advs1 = class_of classes 1 in
  check_bool "source member receives nothing" true (wds1 = [] && advs1 = []);
  (* source moves from 1 to 2, attrs unchanged: 2 loses it, 1 gains it *)
  Ug.route_update t g p0 (Some (5, 2));
  let classes = Ug.take_classes g in
  let _, wds2, advs2 = class_of classes 2 in
  check_bool "new source withdraws" true
    (wds2 = [ p0 ] && advs2 = []);
  let _, wds1, advs1 = class_of classes 1 in
  check_bool "old source catches up" true (wds1 = [] && advs1 = [ (p0, 5) ]);
  let _, wds0, advs0 = class_of classes 0 in
  check_bool "bystander unchanged" true (wds0 = [] && advs0 = [])

let test_late_join_no_duplicates () =
  let _, t = mk () in
  let g = Ug.join t ~peer:0 ~key:"a" in
  Ug.route_update t g p0 (Some (3, -1));
  (* peer 1 joins while the advertisement is still queued; its catch-up
     is a targeted event, the queued broadcast must not reach it *)
  ignore (Ug.join t ~peer:1 ~key:"a");
  (match Ug.rib_find g p0 with
  | Some (a, skip) -> Ug.catch_up_entry g p0 a ~skip ~member:1
  | None -> Alcotest.fail "rib entry expected");
  let classes = Ug.take_classes g in
  let _, _, advs0 = class_of classes 0 in
  let _, _, advs1 = class_of classes 1 in
  check_int "member 0: exactly one advertisement" 1 (List.length advs0);
  check_int "member 1: exactly one advertisement" 1 (List.length advs1);
  (* a fresh change now broadcasts to both as one class *)
  Ug.route_update t g p1 (Some (9, -1));
  match Ug.take_classes g with
  | [ (ms, [], [ (_, 9) ]) ] -> check_bool "reunited" true (ms = [ 0; 1 ])
  | _ -> Alcotest.fail "expected a single class after catch-up"

let test_rekey_split_merge () =
  let tele, t = mk () in
  ignore (Ug.join t ~peer:0 ~key:"a");
  ignore (Ug.join t ~peer:1 ~key:"a");
  ignore (Ug.join t ~peer:2 ~key:"a");
  let merges0 = cval tele "bgp_group_merges_total" in
  (* peer 2 leaves a surviving group: one split *)
  Ug.rekey t ~desired:(fun m -> if m = 2 then "c" else "a");
  check_int "two groups" 2 (Ug.group_count t);
  check_int "one split" 1 (cval tele "bgp_group_splits_total");
  check_int "no merge on fresh group" merges0
    (cval tele "bgp_group_merges_total");
  (* identical (empty) RIBs: the cluster is absorbed back — one merge *)
  Ug.rekey t ~desired:(fun _ -> "a");
  check_int "one group again" 1 (Ug.group_count t);
  check_int "absorbed cluster is a merge" (merges0 + 1)
    (cval tele "bgp_group_merges_total");
  check_bool "members restored" true
    (match Ug.member_group t 2 with
    | Some g -> Ug.members g = [ 0; 1; 2 ]
    | None -> false)

let test_rekey_rib_mismatch_stays_apart () =
  let _, t = mk () in
  let ga = Ug.join t ~peer:0 ~key:"a" in
  ignore (Ug.join t ~peer:1 ~key:"b");
  (* group a has sent p0, group b has not: same desired key, different
     shared RIBs — they must NOT merge (members would miss/duplicate) *)
  Ug.route_update t ga p0 (Some (4, -1));
  ignore (Ug.take_classes ga);
  Ug.rekey t ~desired:(fun _ -> "a");
  check_int "kept apart on RIB mismatch" 2 (Ug.group_count t);
  check_bool "both under the base key" true
    (match (Ug.member_group t 0, Ug.member_group t 1) with
    | Some g0, Some g1 -> Ug.key g0 <> Ug.key g1
    | _ -> false)

let test_rekey_pending_raises () =
  let _, t = mk () in
  let g = Ug.join t ~peer:0 ~key:"a" in
  Ug.route_update t g p0 (Some (1, -1));
  let raised =
    try
      Ug.rekey t ~desired:(fun _ -> "b");
      false
    with Invalid_argument _ -> true
  in
  check_bool "rekey with pending events refuses" true raised

let test_fanout_saved_counter () =
  let tele, t = mk () in
  Ug.note_fanout_saved t 123;
  Ug.note_fanout_saved t 0;
  check_int "bytes credited" 123 (cval tele "bgp_fanout_bytes_saved_total")

(* --- model property: grouped event streams == naive per-peer model ---

   A per-peer model daemon keeps, for every member, its own adj-RIB-out
   mirror and append-only pending withdraw/advertise lists (exactly the
   baseline daemons' bookkeeping). Random op sequences — join with
   catch-up, leave, route updates with randomized source members,
   flushes — must produce identical per-member streams from the engine's
   take_classes. *)

let prefixes = Array.init 6 pfx

let engine_model_prop =
  QCheck.Test.make ~count:200 ~name:"update-group streams match per-peer model"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed; 0x9e0 |] in
      let _, t = mk () in
      (* peer 0 anchors the group so it never disappears *)
      ignore (Ug.join t ~peer:0 ~key:"g");
      let npeers = 4 in
      let member = Array.make npeers false in
      member.(0) <- true;
      let mrib = Array.init npeers (fun _ -> Hashtbl.create 8) in
      let pend_wd = Array.make npeers [] in
      let pend_adv = Array.make npeers [] in
      let model_route m p desired =
        let old = Hashtbl.find_opt mrib.(m) p in
        match desired with
        | Some a when old <> Some a ->
          Hashtbl.replace mrib.(m) p a;
          pend_adv.(m) <- (p, a) :: pend_adv.(m)
        | None when old <> None ->
          Hashtbl.remove mrib.(m) p;
          (* like the daemons' pending queues: a withdrawal purges any
             queued advertisement it supersedes — the flush sends
             withdrawals first, so a stale advertisement surviving here
             would resurrect the route at the receivers *)
          pend_adv.(m) <-
            List.filter (fun (p', _) -> p' <> p) pend_adv.(m);
          pend_wd.(m) <- p :: pend_wd.(m)
        | _ -> ()
      in
      let members () =
        List.filter (fun m -> member.(m)) (List.init npeers Fun.id)
      in
      let g () = Option.get (Ug.member_group t 0) in
      let ok = ref true in
      for _ = 1 to 40 do
        match Random.State.int rand 10 with
        | 0 | 1 ->
          (* join an absent peer, with full catch-up *)
          let m = 1 + Random.State.int rand (npeers - 1) in
          if not member.(m) then begin
            ignore (Ug.join t ~peer:m ~key:"g");
            member.(m) <- true;
            Array.iter
              (fun p ->
                match Ug.rib_find (g ()) p with
                | Some (a, skip) when skip <> m ->
                  Ug.catch_up_entry (g ()) p a ~skip ~member:m;
                  model_route m p (Some a)
                | _ -> ())
              prefixes
          end
        | 2 ->
          let m = 1 + Random.State.int rand (npeers - 1) in
          if member.(m) then begin
            Ug.leave t ~peer:m;
            member.(m) <- false;
            Hashtbl.reset mrib.(m);
            pend_wd.(m) <- [];
            pend_adv.(m) <- []
          end
        | 3 ->
          (* flush: every member's engine stream must equal the model's *)
          let classes = Ug.take_classes (g ()) in
          List.iter
            (fun m ->
              let wds, advs =
                match
                  List.find_opt (fun (ms, _, _) -> List.mem m ms) classes
                with
                | Some (_, w, a) -> (w, a)
                | None -> ([], [])
              in
              if
                wds <> List.rev pend_wd.(m) || advs <> List.rev pend_adv.(m)
              then ok := false;
              pend_wd.(m) <- [];
              pend_adv.(m) <- [])
            (members ());
          (* no class may name a non-member *)
          List.iter
            (fun (ms, _, _) ->
              if List.exists (fun m -> not member.(m)) ms then ok := false)
            classes
        | _ ->
          let p = prefixes.(Random.State.int rand (Array.length prefixes)) in
          if Random.State.int rand 4 = 0 then begin
            Ug.route_update t (g ()) p None;
            List.iter (fun m -> model_route m p None) (members ())
          end
          else begin
            let a = Random.State.int rand 5 in
            let skip =
              if Random.State.bool rand then -1
              else Random.State.int rand npeers
            in
            Ug.route_update t (g ()) p (Some (a, skip));
            List.iter
              (fun m ->
                model_route m p (if m = skip then None else Some a))
              (members ())
          end
      done;
      !ok)

(* --- star-level equivalence: grouped == per-peer on the wire ---

   The fan-out oracle runs one deterministic star scenario under both
   export modes and demands byte-identical per-peer UPDATE streams,
   identical derived adj-RIB-ins and an identical Loc-RIB; cases sweep
   hosts, peer counts, outbound extensions (including the peer-dependent
   one that forces solo groups) and churn, including the mid-run chain
   detach that triggers a live split/merge regroup. *)

let star_equivalence_prop =
  QCheck.Test.make ~count:30
    ~name:"grouped export is byte-equivalent to per-peer export"
    QCheck.(pair (int_bound 100_000) (int_bound 500))
    (fun (seed, index) ->
      Fuzz.Fanout.run_case (Fuzz.Fanout.case ~seed ~index) = [])

(* every churn variant, pinned, on both hosts *)
let test_equivalence_per_churn () =
  let seen = Hashtbl.create 8 in
  let index = ref 0 in
  while Hashtbl.length seen < 8 && !index < 4000 do
    let c = Fuzz.Fanout.case ~seed:1234 ~index:!index in
    let k = (c.host, Fuzz.Fanout.churn_name c.churn) in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      check_bool
        (Format.asprintf "equivalent: %a" Fuzz.Fanout.pp_case c)
        true
        (Fuzz.Fanout.run_case c = [])
    end;
    incr index
  done;
  check_int "all host x churn combinations exercised" 8 (Hashtbl.length seen)

(* grouped mode actually groups: identical spokes share one group, and
   the fan-out saves bytes *)
let test_grouping_effectiveness () =
  List.iter
    (fun host ->
      let tele = Telemetry.create ~enabled:true () in
      let star =
        Scenario.Star.create ~host ~telemetry:tele ~npeers:8 ()
      in
      Scenario.Star.establish star;
      for i = 0 to 19 do
        Scenario.Star.originate star (pfx i)
          Bgp.Attr.
            [
              v (Origin Igp);
              v (As_path [ Seq [ 64999 ] ]);
              v (Next_hop 0x0A000001);
            ]
      done;
      Scenario.Star.settle star;
      check_int "eight identical spokes, one group" 1
        (Scenario.Daemon.group_count (Scenario.Star.dut star));
      check_bool "fan-out saved bytes" true
        (Telemetry.counter_value tele ~name:"bgp_fanout_bytes_saved_total"
           ~labels:[ ("daemon", "dut") ]
         > 0);
      for i = 0 to 7 do
        check_int "every spoke has the table" 20
          (Scenario.Star.sink_rib_size star i)
      done)
    [ `Frr; `Bird ]

(* --- map-carrying chains across export modes ---

   With flap_damping attached on the hub's inbound side, both export
   legs must agree not just on streams and RIBs but on the DUT VMM's
   final map state, byte for byte. Pinned to seeded cases known to draw
   the flap_damping extension with sink_feed churn, whose mid-scenario
   withdrawals leave non-empty damp-map entries. *)
let test_map_state_equivalence () =
  let checked = ref 0 in
  let index = ref 0 in
  while !checked < 2 && !index < 200 do
    let c = Fuzz.Fanout.case ~seed:1234 ~index:!index in
    if c.extension = Some "flap_damping" && c.churn = Fuzz.Fanout.Sink_feed
    then begin
      incr checked;
      let label = Format.asprintf "%a" Fuzz.Fanout.pp_case c in
      check_bool (label ^ ": equivalent") true (Fuzz.Fanout.run_case c = []);
      let g = Fuzz.Fanout.run_leg c ~grouped:true ~shards:1 in
      let b = Fuzz.Fanout.run_leg c ~grouped:false ~shards:1 in
      check_bool (label ^ ": maps non-empty") true (g.Fuzz.Fanout.maps <> "");
      check_bool (label ^ ": map fingerprints byte-identical") true
        (g.Fuzz.Fanout.maps = b.Fuzz.Fanout.maps)
    end;
    incr index
  done;
  check_int "two flap_damping sink_feed cases found" 2 !checked

(* the self-test knob must trip the map-state comparison, not just the
   frame-stream one *)
let test_map_state_perturb () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let rec find index =
    if index > 200 then Alcotest.fail "no flap_damping case in range"
    else
      let c = Fuzz.Fanout.case ~seed:1234 ~index in
      if c.extension = Some "flap_damping" then c else find (index + 1)
  in
  let c = find 0 in
  let findings = Fuzz.Fanout.run_case ~perturb:true c in
  check_bool "perturbation caught" true (findings <> []);
  check_bool "map-state divergence reported" true
    (List.exists (contains ~sub:"map state differs") findings)

let () =
  Alcotest.run "fanout"
    [
      ( "split_update_raw",
        [
          ("exact 4096 fit", `Quick, test_split_exact_fit);
          ("one prefix over splits", `Quick, test_split_one_over);
          ("withdrawn-only splitting", `Quick, test_split_withdrawn_only);
          ("mixed frames ordered", `Quick, test_split_mixed);
          ("oversized attrs raise", `Quick, test_split_attrs_too_big);
          ("empty input", `Quick, test_split_empty);
          Qc.to_alcotest split_roundtrip_prop;
        ] );
      ( "engine",
        [
          ("join/leave + telemetry", `Quick, test_join_leave_telemetry);
          ("broadcast / suppress / withdraw", `Quick, test_route_update_broadcast);
          ("split-horizon classes", `Quick, test_split_horizon_classes);
          ("late join, no duplicates", `Quick, test_late_join_no_duplicates);
          ("rekey split/merge counters", `Quick, test_rekey_split_merge);
          ("rekey keeps unequal RIBs apart", `Quick,
            test_rekey_rib_mismatch_stays_apart);
          ("rekey refuses pending events", `Quick, test_rekey_pending_raises);
          ("fanout bytes-saved counter", `Quick, test_fanout_saved_counter);
          Qc.to_alcotest engine_model_prop;
        ] );
      ( "equivalence",
        [
          Qc.to_alcotest star_equivalence_prop;
          ("every host x churn variant", `Quick, test_equivalence_per_churn);
          ("grouping effectiveness", `Quick, test_grouping_effectiveness);
          ("map state across export modes", `Quick,
            test_map_state_equivalence);
          ("map-state oracle self-test", `Quick, test_map_state_perturb);
        ] );
    ]
