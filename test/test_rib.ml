(* Tests for the RIB substrate: the prefix trie against a reference
   model, the RFC 4271 decision process, and the Loc-RIB container. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool

let p = Bgp.Prefix.of_string

(* a small prefix universe makes collisions (and hence interesting
   replace/remove interleavings) likely *)
let gen_small_prefix =
  QCheck2.Gen.(
    map2
      (fun addr len -> Bgp.Prefix.v (addr lsl 24) len)
      (int_range 0 15) (int_range 0 8))

(* --- Ptrie vs reference model --- *)

type op = Insert of Bgp.Prefix.t * int | Remove of Bgp.Prefix.t

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 0 200)
      (oneof
         [
           map2 (fun p v -> Insert (p, v)) gen_small_prefix (int_range 0 100);
           map (fun p -> Remove p) gen_small_prefix;
         ]))

let run_model ops =
  let trie = Rib.Ptrie.create () in
  let model = Hashtbl.create 16 in
  List.iter
    (fun op ->
      match op with
      | Insert (p, v) ->
        ignore (Rib.Ptrie.replace trie p v);
        Hashtbl.replace model p v
      | Remove p ->
        ignore (Rib.Ptrie.remove trie p);
        Hashtbl.remove model p)
    ops;
  (trie, model)

let prop_trie_model =
  QCheck2.Test.make ~count:300 ~name:"ptrie agrees with Hashtbl model" gen_ops
    (fun ops ->
      let trie, model = run_model ops in
      Rib.Ptrie.size trie = Hashtbl.length model
      && Hashtbl.fold
           (fun p v acc -> acc && Rib.Ptrie.find trie p = Some v)
           model true
      && Rib.Ptrie.fold trie
           (fun p v acc -> acc && Hashtbl.find_opt model p = Some v)
           true)

let prop_trie_longest_match =
  QCheck2.Test.make ~count:300 ~name:"longest_match = linear scan"
    QCheck2.Gen.(pair gen_ops (int_range 0 0xFFFFFFFF))
    (fun (ops, addr) ->
      let trie, model = run_model ops in
      let expect =
        Hashtbl.fold
          (fun p v best ->
            if Bgp.Prefix.mem addr p then
              match best with
              | Some (q, _) when Bgp.Prefix.len q >= Bgp.Prefix.len p -> best
              | _ -> Some (p, v)
            else best)
          model None
      in
      Rib.Ptrie.longest_match trie addr = expect)

let prop_trie_overlaps =
  QCheck2.Test.make ~count:300 ~name:"overlaps = linear scan"
    QCheck2.Gen.(pair gen_ops gen_small_prefix)
    (fun (ops, q) ->
      let trie, model = run_model ops in
      let expect =
        Hashtbl.fold
          (fun stored _ acc ->
            acc || Bgp.Prefix.subset stored q || Bgp.Prefix.subset q stored)
          model false
      in
      Rib.Ptrie.overlaps trie q = expect)

let test_trie_basics () =
  let t = Rib.Ptrie.create () in
  check_bool "empty" true (Rib.Ptrie.is_empty t);
  ignore (Rib.Ptrie.replace t (p "10.0.0.0/8") 1);
  ignore (Rib.Ptrie.replace t (p "10.1.0.0/16") 2);
  ignore (Rib.Ptrie.replace t (p "0.0.0.0/0") 0);
  check Alcotest.int "size" 3 (Rib.Ptrie.size t);
  check
    Alcotest.(option int)
    "exact" (Some 2)
    (Rib.Ptrie.find t (p "10.1.0.0/16"));
  (match Rib.Ptrie.longest_match t (Bgp.Prefix.addr_of_quad (10, 1, 2, 3)) with
  | Some (q, v) ->
    check Alcotest.int "lpm value" 2 v;
    check Alcotest.int "lpm len" 16 (Bgp.Prefix.len q)
  | None -> Alcotest.fail "lpm missed");
  let seen = ref [] in
  Rib.Ptrie.covering t (p "10.1.2.0/24") (fun q v ->
      seen := (Bgp.Prefix.len q, v) :: !seen);
  check_bool "covering order" true
    (List.rev !seen = [ (0, 0); (8, 1); (16, 2) ]);
  Rib.Ptrie.update t (p "10.1.0.0/16") (fun _ -> None);
  check
    Alcotest.(option int)
    "removed" None
    (Rib.Ptrie.find t (p "10.1.0.0/16"))

let test_trie_iter_order () =
  let t = Rib.Ptrie.create () in
  List.iter
    (fun s -> ignore (Rib.Ptrie.replace t (p s) ()))
    [ "10.0.0.0/8"; "9.0.0.0/8"; "10.0.0.0/16"; "11.0.0.0/8" ];
  let order = List.map fst (Rib.Ptrie.to_list t) in
  check_bool "address order, shorter first" true
    (order = [ p "9.0.0.0/8"; p "10.0.0.0/8"; p "10.0.0.0/16"; p "11.0.0.0/8" ])

(* --- decision process --- *)

type troute = {
  lp : int;
  plen : int;
  org : int;
  med : int;
  nas : int;
  ebgp : bool;
  igp : int;
  oid : int;
  clen : int;
  paddr : int;
}

let base =
  {
    lp = 100;
    plen = 3;
    org = 0;
    med = 0;
    nas = 1;
    ebgp = true;
    igp = 10;
    oid = 1;
    clen = 0;
    paddr = 1;
  }

let view : troute Rib.Decision.view =
  {
    local_pref = (fun r -> r.lp);
    as_path_len = (fun r -> r.plen);
    origin = (fun r -> r.org);
    med = (fun r -> r.med);
    neighbor_as = (fun r -> r.nas);
    is_ebgp = (fun r -> r.ebgp);
    igp_cost = (fun r -> r.igp);
    originator_id = (fun r -> r.oid);
    cluster_list_len = (fun r -> r.clen);
    peer_addr = (fun r -> r.paddr);
  }

let prefer name a b =
  check_bool name true (Rib.Decision.compare view a b < 0);
  check_bool (name ^ " (sym)") true (Rib.Decision.compare view b a > 0)

let test_decision_steps () =
  prefer "higher local-pref" { base with lp = 200 } base;
  prefer "shorter path" { base with plen = 2 } base;
  prefer "lower origin" base { base with org = 2 };
  prefer "lower med (same neighbor)" base { base with med = 5 };
  check Alcotest.int "med skipped across ASes" 8
    (Rib.Decision.deciding_step view
       { base with med = 5; nas = 2; clen = 1 }
       base);
  prefer "ebgp over ibgp" base { base with ebgp = false };
  prefer "lower igp cost" { base with igp = 1 } base;
  prefer "lower originator id" base { base with oid = 9 };
  prefer "shorter cluster list" base { base with clen = 2 };
  prefer "lower peer addr" base { base with paddr = 9 };
  check Alcotest.int "full tie" 0 (Rib.Decision.compare view base base)

let gen_troute =
  QCheck2.Gen.(
    let small = int_range 0 3 in
    map
      (fun (lp, plen, org, (med, nas, ebgp, igp), (oid, clen, paddr)) ->
        { lp; plen; org; med; nas; ebgp; igp; oid; clen; paddr })
      (tup5 small small (int_range 0 2)
         (tup4 small small bool small)
         (tup3 small small small)))

let prop_decision_total_order =
  QCheck2.Test.make ~count:1000 ~name:"decision compare is a strict order"
    QCheck2.Gen.(triple gen_troute gen_troute gen_troute)
    (fun (a, b, c) ->
      let cmp = Rib.Decision.compare view in
      Int.compare (cmp a b) 0 = -Int.compare (cmp b a) 0
      && (not (cmp a b < 0 && cmp b c < 0) || cmp a c < 0))

let prop_decision_best_is_min =
  QCheck2.Test.make ~count:500 ~name:"best route beats all candidates"
    QCheck2.Gen.(list_size (int_range 1 10) gen_troute)
    (fun routes ->
      match Rib.Decision.best view routes with
      | None -> false
      | Some b ->
        List.for_all (fun r -> Rib.Decision.compare view b r <= 0) routes)

(* --- Loc-RIB --- *)

let test_loc_rib_changes () =
  let rib = Rib.Loc_rib.create view in
  let px = p "10.0.0.0/8" in
  (match Rib.Loc_rib.update rib ~peer:0 px (Some base) with
  | Rib.Loc_rib.New_best r -> check_bool "first is best" true (r == base)
  | _ -> Alcotest.fail "expected New_best");
  let worse = { base with lp = 50 } in
  (match Rib.Loc_rib.update rib ~peer:1 px (Some worse) with
  | Rib.Loc_rib.Unchanged -> ()
  | _ -> Alcotest.fail "expected Unchanged");
  let better = { base with lp = 200 } in
  (match Rib.Loc_rib.update rib ~peer:2 px (Some better) with
  | Rib.Loc_rib.New_best r -> check_bool "better wins" true (r == better)
  | _ -> Alcotest.fail "expected New_best");
  check Alcotest.int "count" 1 (Rib.Loc_rib.count rib);
  check Alcotest.int "three candidates" 3
    (List.length (Rib.Loc_rib.candidates rib px));
  (match Rib.Loc_rib.update rib ~peer:2 px None with
  | Rib.Loc_rib.New_best r -> check_bool "fallback to base" true (r == base)
  | _ -> Alcotest.fail "expected New_best");
  ignore (Rib.Loc_rib.update rib ~peer:0 px None);
  (match Rib.Loc_rib.update rib ~peer:1 px None with
  | Rib.Loc_rib.Withdrawn -> ()
  | _ -> Alcotest.fail "expected Withdrawn");
  check Alcotest.int "empty again" 0 (Rib.Loc_rib.count rib)

let prop_loc_rib_count =
  QCheck2.Test.make ~count:200 ~name:"loc-rib count is consistent"
    QCheck2.Gen.(
      list_size (int_range 0 100)
        (triple gen_small_prefix (int_range 0 2) (option gen_troute)))
    (fun ops ->
      let rib = Rib.Loc_rib.create view in
      List.iter
        (fun (px, peer, r) -> ignore (Rib.Loc_rib.update rib ~peer px r))
        ops;
      let recount = Rib.Loc_rib.fold_best rib (fun _ _ n -> n + 1) 0 in
      Rib.Loc_rib.count rib = recount)

(* --- Adj-RIB --- *)

let test_adj_rib () =
  let adj = Rib.Adj_rib.create () in
  ignore (Rib.Adj_rib.set adj ~peer:0 (p "10.0.0.0/8") 1);
  ignore (Rib.Adj_rib.set adj ~peer:1 (p "10.0.0.0/8") 2);
  check
    Alcotest.(option int)
    "per-peer" (Some 1)
    (Rib.Adj_rib.find adj ~peer:0 (p "10.0.0.0/8"));
  check
    Alcotest.(option int)
    "per-peer 2" (Some 2)
    (Rib.Adj_rib.find adj ~peer:1 (p "10.0.0.0/8"));
  check Alcotest.int "total" 2 (Rib.Adj_rib.total adj);
  check
    Alcotest.(option int)
    "clear returns old" (Some 1)
    (Rib.Adj_rib.clear adj ~peer:0 (p "10.0.0.0/8"));
  Rib.Adj_rib.drop_peer adj 1;
  check Alcotest.int "dropped" 0 (Rib.Adj_rib.total adj)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "rib"
    [
      ( "ptrie",
        [
          Alcotest.test_case "basics" `Quick test_trie_basics;
          Alcotest.test_case "iteration order" `Quick test_trie_iter_order;
          qc prop_trie_model;
          qc prop_trie_longest_match;
          qc prop_trie_overlaps;
        ] );
      ( "decision",
        [
          Alcotest.test_case "tie-break steps" `Quick test_decision_steps;
          qc prop_decision_total_order;
          qc prop_decision_best_is_min;
        ] );
      ( "loc-rib",
        [
          Alcotest.test_case "change reporting" `Quick test_loc_rib_changes;
          qc prop_loc_rib_count;
        ] );
      ("adj-rib", [ Alcotest.test_case "basics" `Quick test_adj_rib ]);
    ]
