(* Tests for the two daemon implementations: their attribute
   representations (interned records vs wire-form eattrs), their adapters
   to the neutral TLV, and daemon-level protocol behaviour. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool

let sample_attrs =
  [
    Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Egp);
    Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 10; 20 ]; Bgp.Attr.Set [ 30 ] ]);
    Bgp.Attr.v (Bgp.Attr.Next_hop 0x0A000001);
    Bgp.Attr.v (Bgp.Attr.Med 5);
    Bgp.Attr.v (Bgp.Attr.Local_pref 200);
    Bgp.Attr.v (Bgp.Attr.Communities [ 0x10001; 0x10002 ]);
    Bgp.Attr.v (Bgp.Attr.Originator_id 7);
    Bgp.Attr.v (Bgp.Attr.Cluster_list [ 1; 2 ]);
  ]

(* --- FRR-like interned attributes --- *)

let test_intern_roundtrip () =
  let t = Frrouting.Attr_intern.of_attrs sample_attrs in
  let back = Frrouting.Attr_intern.to_attrs t in
  check_bool "all known attrs survive" true
    (List.for_all2 Bgp.Attr.equal sample_attrs back)

let test_intern_sharing () =
  Frrouting.Attr_intern.reset_intern_table ();
  let a = Frrouting.Attr_intern.of_attrs sample_attrs in
  let b = Frrouting.Attr_intern.of_attrs sample_attrs in
  check_bool "same attrs share one record" true (a == b);
  check Alcotest.int "one table entry" 1
    (Frrouting.Attr_intern.intern_table_size ())

let test_intern_path_len_cached () =
  let t = Frrouting.Attr_intern.of_attrs sample_attrs in
  check Alcotest.int "seq(2) + set(1)" 3 t.as_path_len

let test_intern_tlv_adapter () =
  let t = Frrouting.Attr_intern.of_attrs sample_attrs in
  (* every attribute fetched through the adapter parses back identically *)
  List.iter
    (fun (a : Bgp.Attr.t) ->
      match Frrouting.Attr_intern.get_tlv t (Bgp.Attr.code a) with
      | Some tlv ->
        check_bool "tlv parses to same attr" true
          (Bgp.Attr.equal a (Bgp.Attr.of_tlv tlv))
      | None -> Alcotest.fail "attribute missing through adapter")
    sample_attrs;
  check_bool "absent attr is None" true
    (Frrouting.Attr_intern.get_tlv t Bgp.Attr.code_atomic_aggregate = None);
  (* set_tlv installs an unknown attribute in [extra] *)
  let geoloc =
    Bgp.Attr.with_flags 0xC0
      (Bgp.Attr.Unknown { code = 42; payload = Bytes.of_string "abcdefgh" })
  in
  let t' = Frrouting.Attr_intern.set_tlv t (Bgp.Attr.to_tlv geoloc) in
  check_bool "extra attr readable" true
    (Frrouting.Attr_intern.has_extra t' 42);
  (match Frrouting.Attr_intern.get_tlv t' 42 with
  | Some tlv ->
    check_bool "extra attr roundtrip" true
      (Bgp.Attr.equal geoloc (Bgp.Attr.of_tlv tlv))
  | None -> Alcotest.fail "extra missing");
  (* ... but the native encoder does not emit it *)
  check_bool "native encoder skips extras" true
    (List.for_all
       (fun (a : Bgp.Attr.t) -> Bgp.Attr.code a <> 42)
       (Frrouting.Attr_intern.to_attrs t'));
  let t'' = Frrouting.Attr_intern.remove t' 42 in
  check_bool "remove extra" false (Frrouting.Attr_intern.has_extra t'' 42)

(* --- BIRD-like eattrs --- *)

let test_eattr_roundtrip () =
  let t = Bird.Eattr.of_attrs sample_attrs in
  check_bool "all known attrs survive" true
    (List.for_all2 Bgp.Attr.equal sample_attrs (Bird.Eattr.to_attrs t))

let test_eattr_accessors () =
  let t = Bird.Eattr.of_attrs sample_attrs in
  check Alcotest.int "origin" 1 (Bird.Eattr.origin t);
  check Alcotest.int "next hop" 0x0A000001 (Bird.Eattr.next_hop t);
  check Alcotest.int "med" 5 (Bird.Eattr.med t);
  check Alcotest.int "local pref" 200 (Bird.Eattr.local_pref t);
  check Alcotest.int "originator" 7 (Bird.Eattr.originator_id t);
  check Alcotest.int "cluster len" 2 (Bird.Eattr.cluster_list_len t);
  check Alcotest.int "path len (set = 1)" 3 t.path_len;
  check Alcotest.(list int) "asns" [ 10; 20; 30 ] (Bird.Eattr.path_asns t);
  check Alcotest.int "neighbor as" 10 (Bird.Eattr.neighbor_as t);
  check Alcotest.(option int) "origin as" (Some 30) (Bird.Eattr.origin_as t);
  check_bool "contains" true (Bird.Eattr.contains_as t 20);
  check_bool "not contains" false (Bird.Eattr.contains_as t 99)

let test_eattr_wire_mutations () =
  let t = Bird.Eattr.of_attrs sample_attrs in
  let t = Bird.Eattr.prepend_as t 999 in
  check Alcotest.(list int) "prepended" [ 999; 10; 20; 30 ]
    (Bird.Eattr.path_asns t);
  check Alcotest.int "path len updated" 4 t.path_len;
  let t = Bird.Eattr.prepend_cluster t 77 in
  check Alcotest.int "cluster grew" 3 (Bird.Eattr.cluster_list_len t);
  let t = Bird.Eattr.append_community t 0xFFFF0001 in
  check_bool "community appended" true
    (List.exists
       (fun (a : Bgp.Attr.t) ->
         match a.value with
         | Bgp.Attr.Communities cs -> List.mem 0xFFFF0001 cs
         | _ -> false)
       (Bird.Eattr.to_attrs t));
  (* prepend extends the leading AS_SEQUENCE on the wire, not a new seg *)
  let t2 = Bird.Eattr.of_attrs [ Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 1 ] ]) ] in
  let t2 = Bird.Eattr.prepend_as t2 2 in
  (match Bird.Eattr.to_attrs t2 with
  | [ { value = Bgp.Attr.As_path [ Bgp.Attr.Seq [ 2; 1 ] ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected single extended sequence");
  (* prepend onto an empty path *)
  let t3 = Bird.Eattr.prepend_as Bird.Eattr.empty 5 in
  check Alcotest.(list int) "prepend to empty" [ 5 ] (Bird.Eattr.path_asns t3)

let test_eattr_tlv_adapter () =
  let t = Bird.Eattr.of_attrs sample_attrs in
  List.iter
    (fun (a : Bgp.Attr.t) ->
      match Bird.Eattr.get_tlv t (Bgp.Attr.code a) with
      | Some tlv ->
        check_bool "tlv parses back" true
          (Bgp.Attr.equal a (Bgp.Attr.of_tlv tlv))
      | None -> Alcotest.fail "missing through adapter")
    sample_attrs

(* the two representations agree through their adapters *)
let gen_attrs =
  QCheck2.Gen.(
    let asns = list_size (int_range 1 6) (int_range 1 70000) in
    map
      (fun (path, nh, med, comms) ->
        [
          Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
          Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq path ]);
          Bgp.Attr.v (Bgp.Attr.Next_hop nh);
          Bgp.Attr.v (Bgp.Attr.Med med);
          Bgp.Attr.v (Bgp.Attr.Communities comms);
        ])
      (tup4 asns (int_range 0 0xFFFFFFFF) (int_range 0 1000)
         (list_size (int_range 1 4) (int_range 0 0xFFFFFFFF))))

let prop_representations_agree =
  QCheck2.Test.make ~count:300
    ~name:"FRR and BIRD adapters expose identical TLVs" gen_attrs
    (fun attrs ->
      let frr = Frrouting.Attr_intern.of_attrs attrs in
      let bird = Bird.Eattr.of_attrs attrs in
      List.for_all
        (fun code ->
          let a = Frrouting.Attr_intern.get_tlv frr code in
          let b = Bird.Eattr.get_tlv bird code in
          match (a, b) with
          | None, None -> true
          | Some x, Some y -> Bytes.equal x y
          | _ -> false)
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 42 ])

(* --- daemon-level behaviour --- *)

let addr = Bgp.Prefix.addr_of_quad

let two_routers ?(as_a = 65001) ?(as_b = 65000) () =
  Frrouting.Attr_intern.reset_intern_table ();
  let sched = Netsim.Sched.create () in
  let a_addr = addr (10, 9, 0, 1) and b_addr = addr (10, 9, 0, 2) in
  let pa, pb = Netsim.Pipe.create sched in
  let mk name own own_as peer_as peer_addr port =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name ~router_id:own ~local_as:own_as
         ~local_addr:own ~hold_time:9 ())
      [
        {
          Frrouting.Bgpd.pname = "peer";
          remote_as = peer_as;
          remote_addr = peer_addr;
          rr_client = false;
          port;
        };
      ]
  in
  let da = mk "a" a_addr as_a as_b b_addr pa in
  let db = mk "b" b_addr as_b as_a a_addr pb in
  Frrouting.Bgpd.start da;
  Frrouting.Bgpd.start db;
  ignore (Netsim.Sched.run ~until:(2 * 1_000_000) sched);
  (sched, da, db, a_addr)

let basic_attrs nh =
  [
    Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
    Bgp.Attr.v (Bgp.Attr.As_path []);
    Bgp.Attr.v (Bgp.Attr.Next_hop nh);
  ]

let test_daemon_withdraw () =
  let sched, da, db, a_addr = two_routers () in
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Frrouting.Bgpd.originate da p (basic_attrs a_addr);
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);
  check_bool "learned" true (Frrouting.Bgpd.best_route db p <> None);
  Frrouting.Bgpd.withdraw_local da p;
  ignore (Netsim.Sched.run ~until:(8 * 1_000_000) sched);
  check_bool "withdrawn" true (Frrouting.Bgpd.best_route db p = None);
  check Alcotest.int "withdrawal counted" 1
    (Frrouting.Bgpd.stats db).withdrawals_rx

let test_daemon_ebgp_loop_rejected () =
  let sched, da, db, a_addr = two_routers () in
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  (* path already contains B's AS: B must drop it *)
  Frrouting.Bgpd.originate da p
    [
      Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
      Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 65000 ] ]);
      Bgp.Attr.v (Bgp.Attr.Next_hop a_addr);
    ];
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);
  check_bool "loop rejected" true (Frrouting.Bgpd.best_route db p = None)

let test_daemon_update_packing () =
  (* routes sharing one attribute set travel in few packed UPDATEs *)
  let sched, da, db, a_addr = two_routers () in
  let attrs = basic_attrs a_addr in
  for i = 0 to 99 do
    Frrouting.Bgpd.originate da
      (Bgp.Prefix.v (addr (100, i, 0, 0)) 16)
      attrs
  done;
  ignore (Netsim.Sched.run ~until:(10 * 1_000_000) sched);
  check Alcotest.int "all learned" 100 (Frrouting.Bgpd.loc_count db);
  check_bool "packed into few updates" true
    ((Frrouting.Bgpd.stats da).updates_tx <= 3)

let test_daemon_session_loss_cleans_rib () =
  let sched, da, db, a_addr = two_routers () in
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Frrouting.Bgpd.originate da p (basic_attrs a_addr);
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);
  check_bool "learned" true (Frrouting.Bgpd.best_route db p <> None);
  (* kill the link; the hold timer flushes the peer's routes *)
  let peer = Frrouting.Bgpd.peer da 0 in
  Netsim.Pipe.set_up peer.conf.port false;
  ignore (Netsim.Sched.run ~until:(40 * 1_000_000) sched);
  check_bool "session down" false (Frrouting.Bgpd.peer_established db 0);
  check_bool "routes flushed" true (Frrouting.Bgpd.best_route db p = None)

let test_daemon_decision_prefers_shorter_path () =
  (* B hears the same prefix from two eBGP neighbours with different
     path lengths and must pick the shorter *)
  Frrouting.Attr_intern.reset_intern_table ();
  let sched = Netsim.Sched.create () in
  let a1 = addr (10, 9, 1, 1)
  and a2 = addr (10, 9, 1, 2)
  and b = addr (10, 9, 1, 3) in
  let p1a, p1b = Netsim.Pipe.create sched in
  let p2a, p2b = Netsim.Pipe.create sched in
  let feeder name own own_as port =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name ~router_id:own ~local_as:own_as
         ~local_addr:own ())
      [
        {
          Frrouting.Bgpd.pname = "b";
          remote_as = 65000;
          remote_addr = b;
          rr_client = false;
          port;
        };
      ]
  in
  let d1 = feeder "f1" a1 65001 p1a in
  let d2 = feeder "f2" a2 65002 p2a in
  let db =
    Frrouting.Bgpd.create ~sched
      (Frrouting.Bgpd.config ~name:"b" ~router_id:b ~local_as:65000
         ~local_addr:b ())
      [
        {
          Frrouting.Bgpd.pname = "f1";
          remote_as = 65001;
          remote_addr = a1;
          rr_client = false;
          port = p1b;
        };
        {
          Frrouting.Bgpd.pname = "f2";
          remote_as = 65002;
          remote_addr = a2;
          rr_client = false;
          port = p2b;
        };
      ]
  in
  List.iter Frrouting.Bgpd.start [ d1; d2; db ];
  ignore (Netsim.Sched.run ~until:(2 * 1_000_000) sched);
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Frrouting.Bgpd.originate d1 p
    [
      Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
      Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 300; 400 ] ]);
      Bgp.Attr.v (Bgp.Attr.Next_hop a1);
    ];
  Frrouting.Bgpd.originate d2 p
    [
      Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
      Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 300 ] ]);
      Bgp.Attr.v (Bgp.Attr.Next_hop a2);
    ];
  ignore (Netsim.Sched.run ~until:(10 * 1_000_000) sched);
  match Frrouting.Bgpd.best_route db p with
  | Some r ->
    check Alcotest.int "shorter path wins" 2 r.attrs.as_path_len;
    check Alcotest.int "via f2" 65002
      (Frrouting.Attr_intern.neighbor_as r.attrs)
  | None -> Alcotest.fail "no route"

let test_daemon_loop_implicit_withdrawal () =
  (* RFC 4271: a received route whose AS_PATH contains the receiver's
     own AS is unfeasible — an IMPLICIT WITHDRAWAL of any earlier route
     for the same NLRI from that peer, not a silent no-op. Chaos seed
     2026 case 88 caught the silent-drop variant leaving a stale
     adj-rib-in entry that path hunting then locked into a ghost
     cycle. *)
  let sched, da, db, a_addr = two_routers () in
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Frrouting.Bgpd.originate da p (basic_attrs a_addr);
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);
  check_bool "learned" true (Frrouting.Bgpd.best_route db p <> None);
  (* A now re-advertises the same prefix over a path that already
     contains B's AS (A prepends 65001, so B receives [65001 65000]) *)
  Frrouting.Bgpd.originate da p
    [
      Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
      Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq [ 65000 ] ]);
      Bgp.Attr.v (Bgp.Attr.Next_hop a_addr);
    ];
  ignore (Netsim.Sched.run ~until:(10 * 1_000_000) sched);
  check_bool "stale route implicitly withdrawn" true
    (Frrouting.Bgpd.best_route db p = None)

let test_daemon_wedged_handshake_recovers () =
  (* A session restarted while its pipe is still down loses its OPEN;
     without the FSM's connect retry (and the passive open answering a
     retry that lands in Idle) it would sit Open_sent until the hold
     timer closes it, then stay dead forever. *)
  let sched, da, db, a_addr = two_routers () in
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Frrouting.Bgpd.originate da p (basic_attrs a_addr);
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);
  let port = (Frrouting.Bgpd.peer da 0).conf.port in
  Netsim.Pipe.set_up port false;
  ignore (Netsim.Sched.run ~until:(20 * 1_000_000) sched);
  check_bool "session torn down" false (Frrouting.Bgpd.peer_established da 0);
  (* restart into the still-down pipe: both OPENs are lost *)
  Frrouting.Bgpd.restart_sessions da;
  Frrouting.Bgpd.restart_sessions db;
  ignore (Netsim.Sched.run ~until:(22 * 1_000_000) sched);
  Netsim.Pipe.set_up port true;
  (* no further restart: recovery must come from the FSM itself, one
     hold interval after the lost OPENs *)
  ignore (Netsim.Sched.run ~until:(45 * 1_000_000) sched);
  check_bool "A re-established" true (Frrouting.Bgpd.peer_established da 0);
  check_bool "B re-established" true (Frrouting.Bgpd.peer_established db 0);
  check_bool "route re-learned" true (Frrouting.Bgpd.best_route db p <> None)


(* churn property: after a random sequence of announcements and
   withdrawals, the receiving daemon converges to exactly the set of
   routes still originated by the sender *)
let prop_churn_convergence =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (pair (int_range 0 9) bool (* prefix idx, announce/withdraw *)))
  in
  QCheck2.Test.make ~count:25 ~name:"daemon converges under churn" gen
    (fun ops ->
      let sched, da, db, a_addr = two_routers () in
      let prefixes =
        Array.init 10 (fun i -> Bgp.Prefix.v (addr (100, i, 0, 0)) 16)
      in
      let live = Hashtbl.create 16 in
      List.iter
        (fun (i, announce) ->
          if announce then begin
            Frrouting.Bgpd.originate da prefixes.(i) (basic_attrs a_addr);
            Hashtbl.replace live i ()
          end
          else begin
            Frrouting.Bgpd.withdraw_local da prefixes.(i);
            Hashtbl.remove live i
          end;
          (* interleave a little simulated time *)
          ignore
            (Netsim.Sched.run
               ~until:(Netsim.Sched.now sched + 200_000)
               sched))
        ops;
      ignore
        (Netsim.Sched.run ~until:(Netsim.Sched.now sched + 5_000_000) sched);
      Frrouting.Bgpd.loc_count db = Hashtbl.length live
      && Array.for_all
           (fun i ->
             Hashtbl.mem live i
             = (Frrouting.Bgpd.best_route db prefixes.(i) <> None))
           (Array.init 10 (fun i -> i)))

(* the BIRD daemon passes the same protocol checks *)
let test_bird_daemon_basics () =
  let sched = Netsim.Sched.create () in
  let a_addr = addr (10, 9, 2, 1) and b_addr = addr (10, 9, 2, 2) in
  let pa, pb = Netsim.Pipe.create sched in
  let da =
    Bird.Bgpd.create ~sched
      (Bird.Bgpd.config ~name:"a" ~router_id:a_addr ~local_as:65001
         ~local_addr:a_addr ~hold_time:9 ())
      [
        {
          Bird.Bgpd.pname = "b";
          remote_as = 65000;
          remote_addr = b_addr;
          rr_client = false;
          port = pa;
        };
      ]
  in
  let db =
    Bird.Bgpd.create ~sched
      (Bird.Bgpd.config ~name:"b" ~router_id:b_addr ~local_as:65000
         ~local_addr:b_addr ~hold_time:9 ())
      [
        {
          Bird.Bgpd.pname = "a";
          remote_as = 65001;
          remote_addr = a_addr;
          rr_client = false;
          port = pb;
        };
      ]
  in
  Bird.Bgpd.start da;
  Bird.Bgpd.start db;
  ignore (Netsim.Sched.run ~until:(2 * 1_000_000) sched);
  let p = Bgp.Prefix.of_string "203.0.113.0/24" in
  Bird.Bgpd.originate da p (basic_attrs a_addr);
  ignore (Netsim.Sched.run ~until:(5 * 1_000_000) sched);
  (match Bird.Bgpd.best_route db p with
  | Some r ->
    check Alcotest.(list int) "path prepended" [ 65001 ]
      (Bird.Eattr.path_asns r.attrs)
  | None -> Alcotest.fail "no route");
  Bird.Bgpd.withdraw_local da p;
  ignore (Netsim.Sched.run ~until:(8 * 1_000_000) sched);
  check_bool "withdrawn" true (Bird.Bgpd.best_route db p = None)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "hosts"
    [
      ( "frr-attrs",
        [
          Alcotest.test_case "roundtrip" `Quick test_intern_roundtrip;
          Alcotest.test_case "hash-consing" `Quick test_intern_sharing;
          Alcotest.test_case "cached path length" `Quick
            test_intern_path_len_cached;
          Alcotest.test_case "TLV adapter" `Quick test_intern_tlv_adapter;
        ] );
      ( "bird-attrs",
        [
          Alcotest.test_case "roundtrip" `Quick test_eattr_roundtrip;
          Alcotest.test_case "accessors" `Quick test_eattr_accessors;
          Alcotest.test_case "wire mutations" `Quick test_eattr_wire_mutations;
          Alcotest.test_case "TLV adapter" `Quick test_eattr_tlv_adapter;
          qc prop_representations_agree;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "withdraw propagation" `Quick
            test_daemon_withdraw;
          Alcotest.test_case "eBGP loop rejection" `Quick
            test_daemon_ebgp_loop_rejected;
          Alcotest.test_case "update packing" `Quick test_daemon_update_packing;
          Alcotest.test_case "session loss cleans RIBs" `Quick
            test_daemon_session_loss_cleans_rib;
          Alcotest.test_case "decision: shorter path" `Quick
            test_daemon_decision_prefers_shorter_path;
          Alcotest.test_case "loop is implicit withdrawal" `Quick
            test_daemon_loop_implicit_withdrawal;
          Alcotest.test_case "wedged handshake recovers" `Quick
            test_daemon_wedged_handshake_recovers;
          Alcotest.test_case "BIRD daemon basics" `Quick
            test_bird_daemon_basics;
          qc prop_churn_convergence;
        ] );
    ]
