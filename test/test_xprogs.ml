(* Unit tests for the use-case extension bytecodes, run through a bare
   VMM against scripted host operations — no daemons involved, so each
   bytecode's behaviour is pinned down in isolation. *)

let check = Alcotest.check
let check_bool = Alcotest.check Alcotest.bool
let check_i64 = Alcotest.check Alcotest.int64

let ok = function Ok () -> () | Error e -> Alcotest.fail e

let vmm_with prog point bytecode =
  let vmm = Xbgp.Vmm.create ~host:"test" () in
  ok (Xbgp.Vmm.register vmm prog);
  ok (Xbgp.Vmm.attach vmm ~program:prog.Xbgp.Xprog.name ~bytecode ~point ~order:0);
  vmm

let peer ?(peer_type = Xbgp.Api.ebgp_session) ?(peer_as = 65001)
    ?(rr_client = false) ?(cluster_id = 99) () =
  {
    Xbgp.Host_intf.peer_type;
    peer_as;
    peer_router_id = 0x0A000001;
    peer_addr = 0x0A000001;
    local_as = 65000;
    local_router_id = 0x0A000002;
    cluster_id;
    rr_client;
  }

let run vmm point ?(ops = Xbgp.Host_intf.null_ops) ?(args = []) default =
  Xbgp.Vmm.run vmm point ~ops
    ~args:(Xbgp.Host_intf.Args.of_list args)
    ~default:(fun () -> default)

(* scripted attribute store: get_attr/set_attr backed by a TLV list ref *)
let attr_store initial =
  let store = ref (List.map (fun a -> (Bgp.Attr.code a, Bgp.Attr.to_tlv a)) initial) in
  let ops =
    {
      Xbgp.Host_intf.null_ops with
      get_attr = (fun code -> List.assoc_opt code !store);
      set_attr =
        (fun tlv ->
          let code = Bytes.get_uint8 tlv 1 in
          store := (code, tlv) :: List.remove_assoc code !store;
          true);
      remove_attr =
        (fun code ->
          store := List.remove_assoc code !store;
          true);
    }
  in
  (ops, store)

let get_attr_of store code =
  Option.map Bgp.Attr.of_tlv (List.assoc_opt code !store)

(* --- igp_filter (Listing 1) --- *)

let igp_ops ~peer_type ~metric ~max =
  let base, _ = attr_store [] in
  {
    base with
    Xbgp.Host_intf.peer_info = (fun () -> Some (peer ~peer_type ()));
    nexthop = (fun () -> Some (0x0A000001, metric));
    get_xtra =
      (fun key ->
        if key = "igp_max_metric" then
          Option.map Xprogs.Util.encode_u32 max
        else None);
  }

let test_igp_filter () =
  let vmm () =
    vmm_with Xprogs.Igp_filter.program Xbgp.Api.Bgp_outbound_filter
      "export_igp"
  in
  (* metric above the limit on eBGP: reject *)
  check_i64 "high metric rejected" Xbgp.Api.filter_reject
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter
       ~ops:(igp_ops ~peer_type:Xbgp.Api.ebgp_session ~metric:2000 ~max:(Some 1000))
       0L);
  (* acceptable metric: defers to the native default *)
  check_i64 "low metric defers" 42L
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter
       ~ops:(igp_ops ~peer_type:Xbgp.Api.ebgp_session ~metric:500 ~max:(Some 1000))
       42L);
  (* boundary: metric = max is accepted (<=) *)
  check_i64 "boundary accepted" 42L
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter
       ~ops:(igp_ops ~peer_type:Xbgp.Api.ebgp_session ~metric:1000 ~max:(Some 1000))
       42L);
  (* iBGP sessions are never filtered *)
  check_i64 "iBGP defers" 42L
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter
       ~ops:(igp_ops ~peer_type:Xbgp.Api.ibgp_session ~metric:2000 ~max:(Some 1000))
       42L);
  (* missing configuration: defer *)
  check_i64 "no max configured defers" 42L
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter
       ~ops:(igp_ops ~peer_type:Xbgp.Api.ebgp_session ~metric:2000 ~max:None)
       42L)

(* --- route_reflector --- *)

let test_rr_import_loop_checks () =
  let vmm () =
    vmm_with Xprogs.Route_reflector.program Xbgp.Api.Bgp_inbound_filter
      "import"
  in
  let with_attrs attrs peer_type =
    let ops, _ = attr_store attrs in
    {
      ops with
      Xbgp.Host_intf.peer_info = (fun () -> Some (peer ~peer_type ()));
    }
  in
  (* our own router id as ORIGINATOR_ID: reject *)
  check_i64 "originator loop" Xbgp.Api.filter_reject
    (run (vmm ()) Xbgp.Api.Bgp_inbound_filter
       ~ops:
         (with_attrs
            [ Bgp.Attr.v (Bgp.Attr.Originator_id 0x0A000002) ]
            Xbgp.Api.ibgp_session)
       0L);
  (* our cluster id inside CLUSTER_LIST: reject *)
  check_i64 "cluster loop" Xbgp.Api.filter_reject
    (run (vmm ()) Xbgp.Api.Bgp_inbound_filter
       ~ops:
         (with_attrs
            [ Bgp.Attr.v (Bgp.Attr.Cluster_list [ 5; 99; 7 ]) ]
            Xbgp.Api.ibgp_session)
       0L);
  (* clean route defers to native *)
  check_i64 "clean route defers" 7L
    (run (vmm ()) Xbgp.Api.Bgp_inbound_filter
       ~ops:
         (with_attrs
            [ Bgp.Attr.v (Bgp.Attr.Cluster_list [ 5; 7 ]) ]
            Xbgp.Api.ibgp_session)
       7L);
  (* eBGP sessions are not reflection targets: defer *)
  check_i64 "ebgp defers" 7L
    (run (vmm ()) Xbgp.Api.Bgp_inbound_filter
       ~ops:
         (with_attrs
            [ Bgp.Attr.v (Bgp.Attr.Originator_id 0x0A000002) ]
            Xbgp.Api.ebgp_session)
       7L)

let source ?(peer_type = 2) ?(rr_client = false) ?(is_local = false) () =
  Xbgp.Host_intf.source_to_bytes
    {
      Xbgp.Host_intf.src_peer_type = peer_type;
      src_router_id = 0x0A000009;
      src_addr = 0x0A000009;
      src_rr_client = rr_client;
      src_is_local = is_local;
    }

let test_rr_export_reflection () =
  let vmm () =
    vmm_with Xprogs.Route_reflector.program Xbgp.Api.Bgp_outbound_filter
      "export"
  in
  (* iBGP-learned, target is a client: reflect with attributes *)
  let ops, store =
    attr_store [ Bgp.Attr.v (Bgp.Attr.Cluster_list [ 123 ]) ]
  in
  let ops =
    {
      ops with
      Xbgp.Host_intf.peer_info =
        (fun () ->
          Some (peer ~peer_type:Xbgp.Api.ibgp_session ~rr_client:true ()));
    }
  in
  check_i64 "reflected" Xbgp.Api.filter_accept
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops
       ~args:[ (Xbgp.Api.arg_source, source ()) ]
       1L);
  (match get_attr_of store Bgp.Attr.code_originator_id with
  | Some { value = Bgp.Attr.Originator_id oid; _ } ->
    check Alcotest.int "originator = source router id" 0x0A000009 oid
  | _ -> Alcotest.fail "no ORIGINATOR_ID set");
  (match get_attr_of store Bgp.Attr.code_cluster_list with
  | Some { value = Bgp.Attr.Cluster_list l; _ } ->
    check Alcotest.(list int) "cluster id prepended" [ 99; 123 ] l
  | _ -> Alcotest.fail "no CLUSTER_LIST");
  (* existing ORIGINATOR_ID is preserved *)
  let ops2, store2 =
    attr_store [ Bgp.Attr.v (Bgp.Attr.Originator_id 555) ]
  in
  let ops2 =
    {
      ops2 with
      Xbgp.Host_intf.peer_info =
        (fun () ->
          Some (peer ~peer_type:Xbgp.Api.ibgp_session ~rr_client:true ()));
    }
  in
  check_i64 "reflected (existing originator)" Xbgp.Api.filter_accept
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops:ops2
       ~args:[ (Xbgp.Api.arg_source, source ()) ]
       1L);
  (match get_attr_of store2 Bgp.Attr.code_originator_id with
  | Some { value = Bgp.Attr.Originator_id oid; _ } ->
    check Alcotest.int "originator untouched" 555 oid
  | _ -> Alcotest.fail "no ORIGINATOR_ID");
  (* non-client to non-client: reject *)
  let ops3, _ = attr_store [] in
  let ops3 =
    {
      ops3 with
      Xbgp.Host_intf.peer_info =
        (fun () ->
          Some (peer ~peer_type:Xbgp.Api.ibgp_session ~rr_client:false ()));
    }
  in
  check_i64 "non-client pair rejected" Xbgp.Api.filter_reject
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops:ops3
       ~args:[ (Xbgp.Api.arg_source, source ~rr_client:false ()) ]
       0L);
  (* locally originated routes defer to native *)
  check_i64 "local defers" 5L
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops:ops3
       ~args:[ (Xbgp.Api.arg_source, source ~peer_type:0 ~is_local:true ()) ]
       5L);
  (* eBGP-learned routes defer *)
  check_i64 "ebgp-learned defers" 5L
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops:ops3
       ~args:[ (Xbgp.Api.arg_source, source ~peer_type:1 ()) ]
       5L)

(* --- origin_validation --- *)

let ov_vmm roas =
  let vmm = Xbgp.Vmm.create ~host:"test" () in
  ok (Xbgp.Vmm.register vmm Xprogs.Origin_validation.program);
  ok
    (Xbgp.Vmm.attach vmm ~program:"origin_validation" ~bytecode:"init"
       ~point:Xbgp.Api.Bgp_init ~order:0);
  ok
    (Xbgp.Vmm.attach vmm ~program:"origin_validation" ~bytecode:"import"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0);
  let ops =
    {
      Xbgp.Host_intf.null_ops with
      get_xtra =
        (fun key ->
          if key = "roa_table" then Some (Xprogs.Util.encode_roa_table roas)
          else None);
    }
  in
  Xbgp.Vmm.run_init vmm ~ops;
  vmm

let prefix_arg p =
  let b = Bytes.create 5 in
  Bytes.set_int32_be b 0 (Int32.of_int (Bgp.Prefix.addr p));
  Bytes.set_uint8 b 4 (Bgp.Prefix.len p);
  b

let test_ov_init_populates_map () =
  let roas =
    [
      Rpki.Roa.v (Bgp.Prefix.of_string "10.0.0.0/16") ~max_len:16 ~asn:1;
      Rpki.Roa.v (Bgp.Prefix.of_string "11.0.0.0/16") ~max_len:16 ~asn:2;
      Rpki.Roa.v (Bgp.Prefix.of_string "12.0.0.0/24") ~max_len:24 ~asn:3;
    ]
  in
  let vmm = ov_vmm roas in
  check
    Alcotest.(option int)
    "map holds all ROAs" (Some 3)
    (Xbgp.Vmm.map_size vmm ~program:"origin_validation" 0)

let ov_check vmm prefix_s path expected_tag =
  let ops, store =
    attr_store
      [
        Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq path ]);
        Bgp.Attr.v (Bgp.Attr.Communities [ 77 ]);
      ]
  in
  let verdict =
    run vmm Xbgp.Api.Bgp_inbound_filter ~ops
      ~args:[ (Xbgp.Api.arg_prefix, prefix_arg (Bgp.Prefix.of_string prefix_s)) ]
      (-1L)
  in
  check_i64 "accepted (tag, don't drop)" Xbgp.Api.filter_accept verdict;
  match get_attr_of store Bgp.Attr.code_communities with
  | Some { value = Bgp.Attr.Communities cs; _ } ->
    check_bool "pre-existing community kept" true (List.mem 77 cs);
    check_bool
      (Printf.sprintf "tag %x present in %s"
         expected_tag
         (String.concat "," (List.map string_of_int cs)))
      true (List.mem expected_tag cs)
  | _ -> Alcotest.fail "no communities"

let test_ov_verdicts () =
  let roas =
    [ Rpki.Roa.v (Bgp.Prefix.of_string "10.0.0.0/16") ~max_len:16 ~asn:650 ]
  in
  let vmm = ov_vmm roas in
  ov_check vmm "10.0.0.0/16" [ 1; 2; 650 ] 0xFFFF0001;
  (* valid *)
  ov_check vmm "10.0.0.0/16" [ 1; 2; 651 ] 0xFFFF0002;
  (* invalid *)
  ov_check vmm "99.0.0.0/16" [ 1; 2; 650 ] 0xFFFF0003
(* not found *)

(* --- valley_free --- *)

let vf_vmm pairs internal =
  let vmm = Xbgp.Vmm.create ~host:"test" () in
  ok (Xbgp.Vmm.register vmm Xprogs.Valley_free.program);
  ok
    (Xbgp.Vmm.attach vmm ~program:"valley_free" ~bytecode:"init"
       ~point:Xbgp.Api.Bgp_init ~order:0);
  ok
    (Xbgp.Vmm.attach vmm ~program:"valley_free" ~bytecode:"import"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0);
  let ops =
    {
      Xbgp.Host_intf.null_ops with
      get_xtra =
        (fun key ->
          if key = "vf_pairs" then Some (Xprogs.Util.encode_as_pairs pairs)
          else if key = "vf_internal" then
            Some (Xprogs.Util.encode_asn_list internal)
          else None);
    }
  in
  Xbgp.Vmm.run_init vmm ~ops;
  vmm

(* fabric: 20 (child) under 10 (parent) under nothing; session under test
   is 20 -> 10 (upward) *)
let vf_run vmm ~peer_as ~local_as path =
  let ops, _ =
    attr_store [ Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq path ]) ]
  in
  let ops =
    {
      ops with
      Xbgp.Host_intf.peer_info =
        (fun () -> Some (peer ~peer_as ~peer_type:Xbgp.Api.ebgp_session ()));
      get_attr =
        (let base = ops.Xbgp.Host_intf.get_attr in
         fun code -> base code);
    }
  in
  (* local_as comes through peer_info.local_as: rebuild with override *)
  let ops =
    {
      ops with
      Xbgp.Host_intf.peer_info =
        (fun () ->
          Some
            {
              (peer ~peer_as ~peer_type:Xbgp.Api.ebgp_session ()) with
              local_as;
            });
    }
  in
  run vmm Xbgp.Api.Bgp_inbound_filter ~ops (-9L)

let test_valley_free () =
  let pairs = [ (20, 10); (21, 10); (30, 20) ] in
  (* 30 under 20 under 10 *)
  let vmm () = vf_vmm pairs [ 30 ] in
  (* upward session 20->10, path contains down-hop (21,10): valley *)
  check_i64 "valley rejected" Xbgp.Api.filter_reject
    (vf_run (vmm ()) ~peer_as:20 ~local_as:10 [ 21; 10; 20; 999 ]);
  (* upward session, clean ascent: defer to native *)
  check_i64 "clean ascent defers" (-9L)
    (vf_run (vmm ()) ~peer_as:20 ~local_as:10 [ 30; 999 ]);
  (* downward session (10 -> 20 as seen from 20): no check at all *)
  check_i64 "downward session unchecked" (-9L)
    (vf_run (vmm ()) ~peer_as:10 ~local_as:20 [ 21; 10; 20; 999 ]);
  (* internal origin exemption: valley allowed when origin AS is internal *)
  check_i64 "internal origin exempt" (-9L)
    (vf_run (vmm ()) ~peer_as:20 ~local_as:10 [ 21; 10; 20; 30 ])

(* --- geoloc --- *)

let test_geoloc_receive_recovers_attr () =
  let vmm =
    vmm_with Xprogs.Geoloc.program Xbgp.Api.Bgp_receive_message "receive"
  in
  (* a real UPDATE carrying attribute 42 among others *)
  let geoloc_payload = Xprogs.Util.encode_coords ~lat:123456 ~lon:654321 in
  let update =
    Bgp.Message.encode
      (Bgp.Message.Update
         {
           Bgp.Message.withdrawn = [ Bgp.Prefix.of_string "9.9.0.0/16" ];
           attrs =
             [
               Bgp.Attr.v (Bgp.Attr.Origin Bgp.Attr.Igp);
               Bgp.Attr.with_flags 0xC0
                 (Bgp.Attr.Unknown { code = 42; payload = geoloc_payload });
               Bgp.Attr.v (Bgp.Attr.Med 9);
             ];
           nlri = [ Bgp.Prefix.of_string "10.0.0.0/16" ];
         })
  in
  let body =
    Bytes.sub update Bgp.Message.header_size
      (Bytes.length update - Bgp.Message.header_size)
  in
  let ops, store = attr_store [] in
  let ops =
    { ops with Xbgp.Host_intf.peer_info = (fun () -> Some (peer ())) }
  in
  ignore
    (run vmm Xbgp.Api.Bgp_receive_message ~ops
       ~args:[ (Xbgp.Api.arg_update_payload, body) ]
       0L);
  match get_attr_of store 42 with
  | Some { value = Bgp.Attr.Unknown { payload; _ }; flags; _ } ->
    check_bool "payload recovered" true (Bytes.equal payload geoloc_payload);
    check Alcotest.int "flags recovered" 0xC0 flags
  | _ -> Alcotest.fail "attribute 42 not recovered from the wire"

let test_geoloc_import_stamps_and_filters () =
  let vmm () =
    vmm_with Xprogs.Geoloc.program Xbgp.Api.Bgp_inbound_filter "import"
  in
  let coords lat lon =
    Xprogs.Util.encode_coords
      ~lat:(Xprogs.Util.coord_of_degrees lat)
      ~lon:(Xprogs.Util.coord_of_degrees lon)
  in
  (* no GeoLoc on an eBGP session: stamp own coordinates *)
  let ops, store = attr_store [] in
  let ops =
    {
      ops with
      Xbgp.Host_intf.peer_info =
        (fun () -> Some (peer ~peer_type:Xbgp.Api.ebgp_session ()));
      get_xtra =
        (fun key -> if key = "coords" then Some (coords 50.0 4.0) else None);
    }
  in
  check_i64 "defers after stamping" 3L
    (run (vmm ()) Xbgp.Api.Bgp_inbound_filter ~ops 3L);
  check_bool "stamped" true (List.assoc_opt 42 !store <> None);
  (* far-away route rejected when geo_max_dist2 configured *)
  let far =
    Bgp.Attr.with_flags 0xC0
      (Bgp.Attr.Unknown { code = 42; payload = coords (-33.8) 151.2 })
  in
  let ops2, _ = attr_store [ far ] in
  let ops2 =
    {
      ops2 with
      Xbgp.Host_intf.peer_info =
        (fun () -> Some (peer ~peer_type:Xbgp.Api.ibgp_session ()));
      get_xtra =
        (fun key ->
          if key = "coords" then Some (coords 48.8 2.3)
          else if key = "geo_max_dist2" then
            Some (Xprogs.Util.encode_u32 (30_000 * 30_000))
          else None);
    }
  in
  check_i64 "far route rejected" Xbgp.Api.filter_reject
    (run (vmm ()) Xbgp.Api.Bgp_inbound_filter ~ops:ops2 0L);
  (* nearby route passes *)
  let near =
    Bgp.Attr.with_flags 0xC0
      (Bgp.Attr.Unknown { code = 42; payload = coords 50.8 4.3 })
  in
  let ops3, _ = attr_store [ near ] in
  let ops3 =
    {
      ops3 with
      Xbgp.Host_intf.peer_info =
        (fun () -> Some (peer ~peer_type:Xbgp.Api.ibgp_session ()));
      get_xtra = ops2.Xbgp.Host_intf.get_xtra;
    }
  in
  check_i64 "near route defers" 3L
    (run (vmm ()) Xbgp.Api.Bgp_inbound_filter ~ops:ops3 3L)

let test_geoloc_encode_writes_wire_attr () =
  let vmm =
    vmm_with Xprogs.Geoloc.program Xbgp.Api.Bgp_encode_message "encode"
  in
  let payload = Xprogs.Util.encode_coords ~lat:1 ~lon:2 in
  let attr =
    Bgp.Attr.with_flags 0xC0
      (Bgp.Attr.Unknown { code = 42; payload })
  in
  let written = Buffer.create 16 in
  let ops, _ = attr_store [ attr ] in
  let ops =
    {
      ops with
      Xbgp.Host_intf.peer_info =
        (fun () -> Some (peer ~peer_type:Xbgp.Api.ibgp_session ()));
      write_buf =
        (fun b ->
          Buffer.add_bytes written b;
          true);
    }
  in
  ignore (run vmm Xbgp.Api.Bgp_encode_message ~ops 0L);
  (* the written bytes must be a valid wire attribute equal to the TLV *)
  let bytes = Buffer.to_bytes written in
  check Alcotest.int "wire size = 3 + payload" 11 (Bytes.length bytes);
  let decoded, _ = Bgp.Attr.decode_from bytes 0 (Bytes.length bytes) in
  check_bool "wire attr parses back" true (Bgp.Attr.equal attr decoded)

let test_geoloc_export_strips_on_ebgp () =
  let vmm () =
    vmm_with Xprogs.Geoloc.program Xbgp.Api.Bgp_outbound_filter "export"
  in
  let attr =
    Bgp.Attr.with_flags 0xC0
      (Bgp.Attr.Unknown
         { code = 42; payload = Xprogs.Util.encode_coords ~lat:1 ~lon:2 })
  in
  let ops, store = attr_store [ attr ] in
  let ops =
    {
      ops with
      Xbgp.Host_intf.peer_info =
        (fun () -> Some (peer ~peer_type:Xbgp.Api.ebgp_session ()));
    }
  in
  check_i64 "defers" 3L (run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops 3L);
  check_bool "stripped on eBGP" true (List.assoc_opt 42 !store = None);
  (* untouched on iBGP *)
  let ops2, store2 = attr_store [ attr ] in
  let ops2 =
    {
      ops2 with
      Xbgp.Host_intf.peer_info =
        (fun () -> Some (peer ~peer_type:Xbgp.Api.ibgp_session ()));
    }
  in
  check_i64 "defers on iBGP" 3L
    (run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops:ops2 3L);
  check_bool "kept on iBGP" true (List.assoc_opt 42 !store2 <> None)


(* --- prefix_limit --- *)

let test_prefix_limit () =
  let vmm =
    vmm_with Xprogs.Prefix_limit.program Xbgp.Api.Bgp_inbound_filter "import"
  in
  let ops peer_addr =
    {
      Xbgp.Host_intf.null_ops with
      peer_info =
        (fun () ->
          Some { (peer ()) with Xbgp.Host_intf.peer_addr });
      get_xtra =
        (fun key ->
          if key = "max_prefix" then Some (Xprogs.Util.encode_u32 3)
          else None);
    }
  in
  (* three routes from peer 1 pass, the fourth is rejected *)
  for i = 1 to 3 do
    check_i64
      (Printf.sprintf "route %d accepted" i)
      9L
      (run vmm Xbgp.Api.Bgp_inbound_filter ~ops:(ops 1) 9L)
  done;
  check_i64 "fourth rejected" Xbgp.Api.filter_reject
    (run vmm Xbgp.Api.Bgp_inbound_filter ~ops:(ops 1) 9L);
  (* the counter is per peer: peer 2 still has budget *)
  check_i64 "other peer unaffected" 9L
    (run vmm Xbgp.Api.Bgp_inbound_filter ~ops:(ops 2) 9L);
  (* without a configured limit the filter defers *)
  let no_limit =
    {
      Xbgp.Host_intf.null_ops with
      peer_info = (fun () -> Some (peer ()));
    }
  in
  check_i64 "no limit configured" 9L
    (run vmm Xbgp.Api.Bgp_inbound_filter ~ops:no_limit 9L)

(* --- community_strip --- *)

let test_community_strip () =
  let vmm () =
    vmm_with Xprogs.Community_strip.program Xbgp.Api.Bgp_outbound_filter
      "export"
  in
  let local_tag v = (65000 lsl 16) lor v in
  let foreign_tag v = (64999 lsl 16) lor v in
  let run_with attrs peer_type =
    let ops, store = attr_store attrs in
    let ops =
      {
        ops with
        Xbgp.Host_intf.peer_info = (fun () -> Some (peer ~peer_type ()));
      }
    in
    let verdict = run (vmm ()) Xbgp.Api.Bgp_outbound_filter ~ops 5L in
    (verdict, get_attr_of store Bgp.Attr.code_communities)
  in
  (* mixed list: only our AS's tags are removed *)
  let verdict, comms =
    run_with
      [
        Bgp.Attr.v
          (Bgp.Attr.Communities
             [ local_tag 1; foreign_tag 2; local_tag 3; foreign_tag 4 ]);
      ]
      Xbgp.Api.ebgp_session
  in
  check_i64 "defers after rewrite" 5L verdict;
  (match comms with
  | Some { value = Bgp.Attr.Communities cs; _ } ->
    check Alcotest.(list int) "only foreign tags left"
      [ foreign_tag 2; foreign_tag 4 ]
      cs
  | _ -> Alcotest.fail "communities missing");
  (* all local: attribute removed entirely *)
  let _, comms =
    run_with
      [ Bgp.Attr.v (Bgp.Attr.Communities [ local_tag 1; local_tag 2 ]) ]
      Xbgp.Api.ebgp_session
  in
  check_bool "attribute dropped" true (comms = None);
  (* iBGP: untouched *)
  let _, comms =
    run_with
      [ Bgp.Attr.v (Bgp.Attr.Communities [ local_tag 1 ]) ]
      Xbgp.Api.ibgp_session
  in
  (match comms with
  | Some { value = Bgp.Attr.Communities cs; _ } ->
    check Alcotest.(list int) "iBGP untouched" [ local_tag 1 ] cs
  | _ -> Alcotest.fail "communities missing on iBGP")

(* --- med_compare (BGP_DECISION) --- *)

let candidate med =
  Xbgp.Host_intf.candidate_to_bytes
    {
      Xbgp.Host_intf.cd_local_pref = 100;
      cd_as_path_len = 2;
      cd_origin = 0;
      cd_med = med;
      cd_igp_metric = 0;
      cd_originator_id = 1;
      cd_peer_addr = 1;
      cd_is_ebgp = true;
    }

let test_med_compare () =
  let vmm =
    vmm_with Xprogs.Med_compare.program Xbgp.Api.Bgp_decision "compare"
  in
  let decide a b =
    run vmm Xbgp.Api.Bgp_decision
      ~args:
        [
          (Xbgp.Api.arg_candidate_a, candidate a);
          (Xbgp.Api.arg_candidate_b, candidate b);
        ]
      (-1L)
  in
  check_i64 "lower MED first" Xbgp.Api.decision_first (decide 5 10);
  check_i64 "lower MED second" Xbgp.Api.decision_second (decide 10 5);
  check_i64 "equal is a tie" Xbgp.Api.decision_tie (decide 7 7)


(* --- property: bytecode == OCaml reference model --- *)

(* The valley-free bytecode parses the AS_PATH wire payload and probes
   maps; the reference model works on structured lists. Equivalence
   fuzzes the byte-level walk. *)
let vf_reference ~pairs ~internal ~peer_as ~local_as path =
  let upward = List.mem (peer_as, local_as) pairs in
  if not upward then `Defer
  else
    let origin = match List.rev path with a :: _ -> a | [] -> 0 in
    if List.mem origin internal then `Defer
    else
      let rec adjacent = function
        | a :: (b :: _ as rest) ->
          if List.mem (a, b) pairs then true else adjacent rest
        | _ -> false
      in
      if adjacent path then `Reject else `Defer

let prop_valley_free_model =
  let gen =
    QCheck2.Gen.(
      let asn = int_range 1 12 in
      tup5
        (list_size (int_range 0 8) (pair asn asn)) (* pairs *)
        (list_size (int_range 0 3) asn) (* internal *)
        (pair asn asn) (* peer_as, local_as *)
        (list_size (int_range 0 6) asn) (* path *)
        unit)
  in
  QCheck2.Test.make ~count:300 ~name:"valley_free bytecode = model" gen
    (fun (pairs, internal, (peer_as, local_as), path, ()) ->
      let vmm = vf_vmm pairs internal in
      let got =
        if path = [] then `Skip
        else begin
          let ops, _ =
            attr_store [ Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq path ]) ]
          in
          let ops =
            {
              ops with
              Xbgp.Host_intf.peer_info =
                (fun () ->
                  Some
                    {
                      (peer ~peer_as ~peer_type:Xbgp.Api.ebgp_session ()) with
                      local_as;
                    });
            }
          in
          match run vmm Xbgp.Api.Bgp_inbound_filter ~ops (-9L) with
          | -9L -> `Defer
          | 1L -> `Reject
          | _ -> `Other
        end
      in
      got = `Skip
      || got = vf_reference ~pairs ~internal ~peer_as ~local_as path)

(* Same for origin validation (exact-match ROA domain). *)
let prop_ov_model =
  let gen =
    QCheck2.Gen.(
      let asn = int_range 1 9 in
      let prefix =
        map2
          (fun a len -> Bgp.Prefix.v (a lsl 24) len)
          (int_range 1 15) (int_range 8 24)
      in
      tup4
        (list_size (int_range 0 10) (pair prefix asn)) (* exact ROAs *)
        prefix (* route prefix *)
        (list_size (int_range 1 5) asn) (* path *)
        unit)
  in
  QCheck2.Test.make ~count:300 ~name:"origin_validation bytecode = model" gen
    (fun (roa_specs, prefix, path, ()) ->
      (* exact-coverage ROAs: last binding per prefix wins in the map *)
      let roas =
        List.map
          (fun (p, asn) ->
            Rpki.Roa.v p ~max_len:(Bgp.Prefix.len p) ~asn)
          roa_specs
      in
      let vmm = ov_vmm roas in
      let ops, store =
        attr_store [ Bgp.Attr.v (Bgp.Attr.As_path [ Bgp.Attr.Seq path ]) ]
      in
      let verdict =
        run vmm Xbgp.Api.Bgp_inbound_filter ~ops
          ~args:[ (Xbgp.Api.arg_prefix, prefix_arg prefix) ]
          (-1L)
      in
      if verdict <> Xbgp.Api.filter_accept then false
      else begin
        let origin = List.nth path (List.length path - 1) in
        (* the map keeps the most recently loaded ROA per prefix *)
        let expected =
          match
            List.fold_left
              (fun acc ((p, asn) : Bgp.Prefix.t * int) ->
                if Bgp.Prefix.equal p prefix then Some asn else acc)
              None roa_specs
          with
          | None -> 0xFFFF0003
          | Some asn when asn = origin -> 0xFFFF0001
          | Some _ -> 0xFFFF0002
        in
        match get_attr_of store Bgp.Attr.code_communities with
        | Some { value = Bgp.Attr.Communities cs; _ } ->
          List.mem expected cs
        | _ -> false
      end)

(* --- util encoders --- *)

(* --- flap_damping (RFC 2439, event-driven) --- *)

let le32 n = String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

(* minimal UPDATE body: the withdrawn-routes section plus an empty
   path-attribute section *)
let update_body_withdrawing prefixes =
  let w = Buffer.create 16 in
  List.iter
    (fun (addr, plen) ->
      Buffer.add_uint8 w plen;
      let nbytes = (plen + 7) / 8 in
      for i = 0 to nbytes - 1 do
        Buffer.add_uint8 w ((addr lsr (8 * (3 - i))) land 0xff)
      done)
    prefixes;
  let buf = Buffer.create 32 in
  Buffer.add_uint16_be buf (Buffer.length w);
  Buffer.add_buffer buf w;
  Buffer.add_uint16_be buf 0;
  Bytes.of_string (Buffer.contents buf)

let prefix_arg addr plen =
  let b = Bytes.create 5 in
  Bytes.set_int32_be b 0 (Int32.of_int addr);
  Bytes.set_uint8 b 4 plen;
  b

let test_flap_damping () =
  let tele = Telemetry.create ~enabled:true () in
  let vmm =
    Xprogs.Registry.vmm_of_manifest ~telemetry:tele ~host:"test"
      Xprogs.Flap_damping.manifest
  in
  let addr = 0x0A000000 and plen = 24 in
  let withdraw () =
    ignore
      (run vmm Xbgp.Api.Bgp_receive_message
         ~args:
           [
             ( Xbgp.Api.arg_update_payload,
               update_body_withdrawing [ (addr, plen) ] );
           ]
         0L)
  in
  let announce () =
    run vmm Xbgp.Api.Bgp_inbound_filter
      ~args:[ (Xbgp.Api.arg_prefix, prefix_arg addr plen) ]
      9L
  in
  (* no damping state: the filter defers *)
  check_i64 "clean prefix defers" 9L (announce ());
  (* three flaps (withdraw + re-announce) leave the prefix usable:
     penalties 1000/1750/2313 decay to 750/1313/1735 *)
  for i = 1 to 3 do
    withdraw ();
    check_i64 (Printf.sprintf "announce after flap %d accepted" i) 9L
      (announce ())
  done;
  (* the fourth flap reaches 2735, over the 2500 cut-off: suppressed
     for the next four announcements (2052/1539/1155/867)... *)
  withdraw ();
  for i = 1 to 4 do
    check_i64
      (Printf.sprintf "suppressed announcement %d rejected" i)
      Xbgp.Api.filter_reject (announce ())
  done;
  (* ...until the decayed penalty (651) crosses the 700 reuse bound *)
  check_i64 "prefix reused" 9L (announce ());
  check_i64 "and stays usable" 9L (announce ());
  (* a single damp entry holds the whole history *)
  (match Xbgp.Vmm.map_dump vmm ~program:"flap_damping" with
  | Some [ ("damp", [ (key, _) ]) ] ->
    check_bool "key is [addr BE][plen][pad3]" true
      (key = "\x0a\x00\x00\x00\x18\x00\x00\x00")
  | _ -> Alcotest.fail "unexpected damp-map dump");
  (* map activity is visible through the telemetry registry *)
  check_bool "map updates counted" true
    (Telemetry.counter_value tele ~name:"xbgp_map_updates_total"
       ~labels:
         [ ("host", "test"); ("program", "flap_damping"); ("map", "damp") ]
     > 0)

(* --- rate_limit (per-peer announcement windows) --- *)

let test_rate_limit () =
  let tele = Telemetry.create ~enabled:true () in
  let vmm =
    Xprogs.Registry.vmm_of_manifest ~telemetry:tele ~host:"test"
      Xprogs.Rate_limit.manifest
  in
  let ops peer_addr =
    {
      Xbgp.Host_intf.null_ops with
      peer_info = (fun () -> Some { (peer ()) with Xbgp.Host_intf.peer_addr });
      get_xtra =
        (fun key ->
          if key = "rate_limit" then Some (Xprogs.Util.encode_u32 2)
          else None);
    }
  in
  let new_update p = ignore (run vmm Xbgp.Api.Bgp_receive_message ~ops:(ops p) 0L) in
  let announce p = run vmm Xbgp.Api.Bgp_inbound_filter ~ops:(ops p) 9L in
  (* window of 2: the first two prefixes of the UPDATE pass, the rest drop *)
  new_update 1;
  check_i64 "prefix 1 accepted" 9L (announce 1);
  check_i64 "prefix 2 accepted" 9L (announce 1);
  check_i64 "prefix 3 dropped" Xbgp.Api.filter_reject (announce 1);
  check_i64 "prefix 4 dropped" Xbgp.Api.filter_reject (announce 1);
  (* the limit is per peer: peer 2 has its own window *)
  new_update 2;
  check_i64 "other peer unaffected" 9L (announce 2);
  (* a new UPDATE from peer 1 opens a fresh window, drops accumulate *)
  new_update 1;
  check_i64 "fresh window prefix 1" 9L (announce 1);
  check_i64 "fresh window prefix 2" 9L (announce 1);
  check_i64 "fresh window prefix 3 dropped" Xbgp.Api.filter_reject
    (announce 1);
  (* slot 1 ends with count=2 and 3 cumulative drops; slot 2 with 1/0 *)
  (match Xbgp.Vmm.map_dump vmm ~program:"rate_limit" with
  | Some [ ("win", entries) ] ->
    check
      Alcotest.(list (pair string string))
      "window slots"
      [ (le32 1, le32 2 ^ le32 3); (le32 2, le32 1 ^ le32 0) ]
      entries
  | _ -> Alcotest.fail "unexpected win-map dump");
  (* without a configured limit the filter defers *)
  let no_limit =
    {
      Xbgp.Host_intf.null_ops with
      peer_info = (fun () -> Some (peer ()));
    }
  in
  check_i64 "no limit configured" 9L
    (run vmm Xbgp.Api.Bgp_inbound_filter ~ops:no_limit 9L);
  check_bool "drops visible as map updates" true
    (Telemetry.counter_value tele ~name:"xbgp_map_updates_total"
       ~labels:[ ("host", "test"); ("program", "rate_limit"); ("map", "win") ]
     > 0)

let test_util_encoders () =
  let b = Xprogs.Util.encode_u32 0x01020304 in
  check Alcotest.int "u32 BE" 0x01
    (Bytes.get_uint8 b 0);
  let roas =
    [ Rpki.Roa.v (Bgp.Prefix.of_string "10.0.0.0/16") ~max_len:16 ~asn:7 ]
  in
  let t = Xprogs.Util.encode_roa_table roas in
  check Alcotest.int "roa entry size" 12 (Bytes.length t);
  check Alcotest.int "addr BE" 10 (Bytes.get_uint8 t 0);
  check Alcotest.int "len" 16 (Bytes.get_uint8 t 4);
  check Alcotest.int "asn" 7 (Int32.to_int (Bytes.get_int32_be t 8));
  let pairs = Xprogs.Util.encode_as_pairs [ (1, 2); (3, 4) ] in
  check Alcotest.int "pairs size" 16 (Bytes.length pairs);
  check_bool "coord fixed point positive" true
    (Xprogs.Util.coord_of_degrees (-33.87) > 0)

let () =
  Alcotest.run "xprogs"
    [
      ("igp_filter", [ Alcotest.test_case "Listing 1" `Quick test_igp_filter ]);
      ( "route_reflector",
        [
          Alcotest.test_case "import loop checks" `Quick
            test_rr_import_loop_checks;
          Alcotest.test_case "export reflection" `Quick
            test_rr_export_reflection;
        ] );
      ( "origin_validation",
        [
          Alcotest.test_case "init populates map" `Quick
            test_ov_init_populates_map;
          Alcotest.test_case "verdicts + tagging" `Quick test_ov_verdicts;
        ] );
      ( "valley_free",
        [ Alcotest.test_case "pair detection" `Quick test_valley_free ] );
      ( "prefix_limit",
        [ Alcotest.test_case "stateful counting" `Quick test_prefix_limit ] );
      ( "community_strip",
        [ Alcotest.test_case "strips own tags" `Quick test_community_strip ] );
      ( "med_compare",
        [ Alcotest.test_case "decision verdicts" `Quick test_med_compare ] );
      ( "bytecode-vs-model",
        [
          Qc.to_alcotest prop_valley_free_model;
          Qc.to_alcotest prop_ov_model;
        ] );
      ( "geoloc",
        [
          Alcotest.test_case "receive recovers attr" `Quick
            test_geoloc_receive_recovers_attr;
          Alcotest.test_case "import stamps and filters" `Quick
            test_geoloc_import_stamps_and_filters;
          Alcotest.test_case "encode writes wire attr" `Quick
            test_geoloc_encode_writes_wire_attr;
          Alcotest.test_case "export strips on eBGP" `Quick
            test_geoloc_export_strips_on_ebgp;
        ] );
      ( "flap_damping",
        [
          Alcotest.test_case "suppress then reuse" `Quick test_flap_damping;
        ] );
      ( "rate_limit",
        [
          Alcotest.test_case "per-peer windows" `Quick test_rate_limit;
        ] );
      ("util", [ Alcotest.test_case "encoders" `Quick test_util_encoders ]);
    ]
