(* Tests for the Fig. 5 data-center fabric scenario: all three
   configurations (`Plain / `Same_as / `Xbgp) through single and double
   link failures, with convergence, reachability and valley-free
   assertions, plus the regressions the chaos campaign surfaced (ghost
   routes after a ToR is isolated, wedged handshakes after a multi-link
   repair). *)

let check_bool = Alcotest.(check bool)

let tors = [ "T20"; "T21"; "T22"; "T23" ]

(* ASN -> Clos level (0 = spine, 1 = leaf, 2 = ToR), from the same
   descriptor Scenario.Fabric instantiates. Only meaningful for the
   distinct-ASN configurations; `Same_as reuses ASNs across routers. *)
let levels =
  let clos = Dataset.Clos.fig5 () in
  fun asn ->
    match
      List.find_opt (fun (r : Dataset.Clos.router) -> r.asn = asn)
        clos.routers
    with
    | Some r -> r.level
    | None -> Alcotest.failf "unknown ASN %d" asn

(* A path is valley-free when, read from the querying router towards
   the origin, it climbs the hierarchy (level numbers falling) before
   descending (rising) — once it has gone down it may never go up
   again. A "valley" shows up as a local maximum in the level
   sequence: spine -> leaf -> spine, or leaf -> ToR -> leaf. *)
let valley_free asns =
  let rec ok descended = function
    | a :: (b :: _ as rest) ->
      if b > a then ok true rest
      else if b < a && descended then false
      else ok descended rest
    | _ -> true
  in
  ok false (List.map levels asns)

let assert_valley_free f label =
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            match Scenario.Fabric.path f src dst with
            | None -> ()
            | Some p ->
              check_bool
                (Printf.sprintf "%s: %s->%s path valley-free" label src dst)
                true (valley_free p))
        tors)
    tors

let assert_full_mesh f label =
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            check_bool
              (Printf.sprintf "%s: %s reaches %s" label src dst)
              true
              (Scenario.Fabric.reaches f src dst))
        tors)
    tors

let build config =
  let f = Scenario.Fabric.build config in
  Scenario.Fabric.start f;
  Scenario.Fabric.settle f 30;
  f

(* --- convergence from cold start --- *)

let test_converges config label () =
  let f = build config in
  assert_full_mesh f label;
  if config <> `Same_as then assert_valley_free f label

(* --- single link failure --- *)

let test_single_failure config label () =
  let f = build config in
  Scenario.Fabric.fail_link f "L10" "S1";
  Scenario.Fabric.settle f 60;
  (* one leaf-spine link down leaves every ToR pair connected through
     the surviving spine in every configuration *)
  assert_full_mesh f (label ^ " after L10-S1 fail");
  if config <> `Same_as then
    assert_valley_free f (label ^ " after L10-S1 fail");
  Scenario.Fabric.repair_link f "L10" "S1";
  Scenario.Fabric.settle f 60;
  assert_full_mesh f (label ^ " after repair")

(* --- the paper's double failure (§3.3 / Fig. 5) --- *)

let test_double_failure_partition () =
  (* duplicate-ASN trick: loop prevention blocks the recovery path, the
     fabric partitions *)
  let f = build `Same_as in
  Scenario.Fabric.fail_link f "L10" "S1";
  Scenario.Fabric.fail_link f "L13" "S2";
  Scenario.Fabric.settle f 90;
  check_bool "same-AS fabric partitions" false
    (Scenario.Fabric.reaches f "L10" "L13")

let test_double_failure_xbgp_recovers () =
  (* distinct ASNs + valley_free extension: the valley through the
     other pod is taken deliberately and the fabric stays connected *)
  let f = build `Xbgp in
  Scenario.Fabric.fail_link f "L10" "S1";
  Scenario.Fabric.fail_link f "L13" "S2";
  Scenario.Fabric.settle f 90;
  check_bool "xbgp fabric stays connected" true
    (Scenario.Fabric.reaches f "L10" "L13");
  assert_full_mesh f "xbgp after L10-S1 + L13-S2"

(* --- ghost-route regression (chaos seed 2026 case 88) --- *)

let test_isolated_tor_leaves_no_ghosts () =
  (* Failing both of a ToR's uplinks isolates it. Before loop-detected
     routes were treated as implicit withdrawals, path hunting could
     lock the rest of the fabric onto a stale path towards the isolated
     ToR — a stable ghost that survived arbitrarily long settling. *)
  let f = build `Plain in
  Scenario.Fabric.fail_link f "T22" "L12";
  Scenario.Fabric.fail_link f "T22" "L13";
  Scenario.Fabric.settle f 120;
  List.iter
    (fun src ->
      if src <> "T22" then
        check_bool
          (Printf.sprintf "%s holds no route to isolated T22" src)
          false
          (Scenario.Fabric.reaches f src "T22"))
    [ "S1"; "S2"; "L10"; "L11"; "L12"; "L13"; "T20"; "T21"; "T23" ];
  (* the rest of the fabric is unaffected *)
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            check_bool
              (Printf.sprintf "%s still reaches %s" src dst)
              true
              (Scenario.Fabric.reaches f src dst))
        [ "T20"; "T21"; "T23" ])
    [ "T20"; "T21"; "T23" ]

(* --- multi-link repair regression (wedged handshakes) --- *)

let test_multi_link_repair_reestablishes () =
  (* Repairing two links back-to-back: the first repair restarts every
     dead session, sending OPENs for the second link into a pipe that
     is still down; the second repair then finds those sessions mid
     handshake and restarts nothing. Recovery relies on the FSM's
     connect retry. *)
  let f = build `Plain in
  Scenario.Fabric.fail_link f "T22" "L12";
  Scenario.Fabric.fail_link f "L10" "S1";
  Scenario.Fabric.settle f 30;
  Scenario.Fabric.repair_link f "T22" "L12";
  Scenario.Fabric.repair_link f "L10" "S1";
  (* one hold interval for the lost OPENs to expire and retry, then
     normal convergence *)
  Scenario.Fabric.settle f 60;
  assert_full_mesh f "after double repair"

let () =
  Alcotest.run "fabric"
    [
      ( "converges",
        [
          Alcotest.test_case "plain" `Quick (test_converges `Plain "plain");
          Alcotest.test_case "same-as" `Quick
            (test_converges `Same_as "same-as");
          Alcotest.test_case "xbgp" `Quick (test_converges `Xbgp "xbgp");
        ] );
      ( "single-failure",
        [
          Alcotest.test_case "plain" `Quick
            (test_single_failure `Plain "plain");
          Alcotest.test_case "same-as" `Quick
            (test_single_failure `Same_as "same-as");
          Alcotest.test_case "xbgp" `Quick
            (test_single_failure `Xbgp "xbgp");
        ] );
      ( "double-failure",
        [
          Alcotest.test_case "same-as partitions" `Quick
            test_double_failure_partition;
          Alcotest.test_case "xbgp recovers" `Quick
            test_double_failure_xbgp_recovers;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "isolated ToR leaves no ghosts" `Quick
            test_isolated_tor_leaves_no_ghosts;
          Alcotest.test_case "multi-link repair re-establishes" `Quick
            test_multi_link_repair_reestablishes;
        ] );
    ]
