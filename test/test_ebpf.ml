(* Unit and property tests for the eBPF substrate: instruction codec,
   assembler, verifier, memory and interpreter semantics. *)

open Ebpf

let check = Alcotest.check
let check_i64 = Alcotest.check Alcotest.int64
let check_bool = Alcotest.check Alcotest.bool

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

(* run a program fragment and return r0 *)
let eval ?(helpers = []) items =
  let vm = Vm.create ~helpers (Asm.assemble items) in
  Vm.run vm

let r0 = Insn.R0
let r1 = Insn.R1
let r2 = Insn.R2

(* --- instruction encode/decode --- *)

let test_encode_golden () =
  (* mov r1, 5  =>  b7 01 00 00 05 00 00 00 *)
  let b = Insn.encode [ Insn.Alu (W64bit, Mov, R1, Imm 5l) ] in
  check Alcotest.string "mov r1,5 wire form" "b701000005000000"
    (String.concat ""
       (List.init (Bytes.length b) (fun i ->
            Printf.sprintf "%02x" (Bytes.get_uint8 b i))));
  let b = Insn.encode [ Insn.Exit ] in
  check Alcotest.int "exit opcode" 0x95 (Bytes.get_uint8 b 0)

let test_lddw_two_slots () =
  let prog = [ Insn.Lddw (R0, 0x1122334455667788L); Insn.Exit ] in
  let b = Insn.encode prog in
  check Alcotest.int "three slots" 24 (Bytes.length b);
  check_bool "roundtrip" true (Insn.decode b = prog)

let test_decode_errors () =
  Alcotest.check_raises "length not multiple of 8"
    (Insn.Decode_error "program length 7 not a multiple of 8") (fun () ->
      ignore (Insn.decode (Bytes.create 7)));
  let b = Bytes.make 8 '\x00' in
  Bytes.set_uint8 b 0 0xff;
  check_bool "invalid alu opcode rejected" true
    (match Insn.decode b with
    | exception Insn.Decode_error _ -> true
    | _ -> false);
  let b = Bytes.make 8 '\x00' in
  Bytes.set_uint8 b 0 0x18;
  check_bool "truncated lddw rejected" true
    (match Insn.decode b with
    | exception Insn.Decode_error _ -> true
    | _ -> false)

(* random valid instruction generator for the roundtrip property *)
let gen_insn =
  let open QCheck2.Gen in
  let reg = map Insn.reg_of_index (int_range 0 10) in
  let size = oneofl [ Insn.W8; W16; W32; W64 ] in
  let width = oneofl [ Insn.W32bit; W64bit ] in
  let alu_op =
    oneofl
      [
        Insn.Add; Sub; Mul; Div; Or; And; Lsh; Rsh; Neg; Mod; Xor; Mov; Arsh;
      ]
  in
  let cond =
    oneofl [ Insn.Eq; Gt; Ge; Set; Ne; Sgt; Sge; Lt; Le; Slt; Sle ]
  in
  let imm = map Int32.of_int (int_range (-1000000) 1000000) in
  let off = int_range (-30000) 30000 in
  let src =
    oneof [ map (fun i -> Insn.Imm i) imm; map (fun r -> Insn.Reg r) reg ]
  in
  oneof
    [
      map3 (fun w op (d, s) -> Insn.Alu (w, op, d, s)) width alu_op
        (pair reg src);
      map2
        (fun e (r, b) -> Insn.Endian (e, r, b))
        (oneofl [ Insn.Le; Insn.Be ])
        (pair reg (oneofl [ 16; 32; 64 ]));
      map2 (fun r v -> Insn.Lddw (r, v)) reg (map Int64.of_int int);
      map3 (fun sz (d, s) o -> Insn.Ldx (sz, d, s, o)) size (pair reg reg) off;
      map3 (fun sz (d, o) i -> Insn.St (sz, d, o, i)) size (pair reg off) imm;
      map3 (fun sz (d, o) s -> Insn.Stx (sz, d, o, s)) size (pair reg off) reg;
      map (fun o -> Insn.Ja o) off;
      map3
        (fun (w, c) (d, s) o -> Insn.Jcond (w, c, d, s, o))
        (pair width cond) (pair reg src) off;
      map (fun i -> Insn.Call i) (int_range 0 1000);
      return Insn.Exit;
    ]

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"insn encode/decode roundtrip"
    QCheck2.Gen.(list_size (int_range 1 50) gen_insn)
    (fun prog -> Insn.decode (Insn.encode prog) = prog)

let prop_decode_never_crashes =
  QCheck2.Test.make ~count:2000 ~name:"Insn.decode total on garbage"
    QCheck2.Gen.(map Bytes.of_string (string_size (int_range 0 64)))
    (fun b ->
      match Insn.decode b with
      | _ -> true
      | exception Insn.Decode_error _ -> true
      | exception _ -> false)

(* --- assembler --- *)

let test_asm_labels () =
  let prog =
    Asm.(
      assemble
        [
          movi r0 0;
          label "top";
          addi r0 1;
          jeqi r0 10 "end";
          ja "top";
          label "end";
          exit_;
        ])
  in
  let vm = Vm.create ~helpers:[] prog in
  check_i64 "loop ten times" 10L (Vm.run vm)

let test_asm_lddw_label_offsets () =
  let v =
    eval
      Asm.
        [
          lddw r1 0x100000000L;
          jnei r0 0 "skip";
          movi r0 7;
          label "skip";
          exit_;
        ]
  in
  check_i64 "offsets with lddw" 7L v

let test_asm_errors () =
  check_bool "unknown label" true
    (match Asm.assemble [ Asm.ja "nowhere"; Asm.exit_ ] with
    | exception Asm.Asm_error _ -> true
    | _ -> false);
  check_bool "duplicate label" true
    (match Asm.assemble [ Asm.label "x"; Asm.label "x"; Asm.exit_ ] with
    | exception Asm.Asm_error _ -> true
    | _ -> false);
  check_bool "immediate too large" true
    (match Asm.movi r0 0x1_0000_0000 with
    | exception Asm.Asm_error _ -> true
    | _ -> false)

let prop_encode_stable =
  QCheck2.Test.make ~count:200 ~name:"encode stable under decode"
    QCheck2.Gen.(list_size (int_range 1 40) gen_insn)
    (fun prog ->
      let b = Insn.encode prog in
      Bytes.equal b (Insn.encode (Insn.decode b)))

(* --- interpreter: ALU semantics --- *)

let test_alu64 () =
  let t name expect items = check_i64 name expect (eval items) in
  t "add" 12L Asm.[ movi r0 5; addi r0 7; exit_ ];
  t "sub wraps" (-2L) Asm.[ movi r0 5; subi r0 7; exit_ ];
  t "mul" 35L Asm.[ movi r0 5; muli r0 7; exit_ ];
  t "div unsigned" 3L Asm.[ movi r0 7; divi r0 2; exit_ ];
  t "mod" 1L Asm.[ movi r0 7; modi r0 2; exit_ ];
  t "and" 4L Asm.[ movi r0 6; andi r0 12; exit_ ];
  t "or" 14L Asm.[ movi r0 6; ori r0 12; exit_ ];
  t "xor" 10L Asm.[ movi r0 6; xori r0 12; exit_ ];
  t "lsh" 24L Asm.[ movi r0 3; lshi r0 3; exit_ ];
  t "rsh" 3L Asm.[ movi r0 24; rshi r0 3; exit_ ];
  t "neg" (-5L) Asm.[ movi r0 5; neg r0; exit_ ];
  t "arsh sign" (-1L) Asm.[ movi r0 (-8); arshi r0 3; exit_ ];
  t "lsh masked" 2L Asm.[ movi r0 1; lshi r0 65; exit_ ];
  t "div unsigned semantics" 0x7FFFFFFFFFFFFFFFL
    Asm.[ movi r0 (-2); divi r0 2; exit_ ]

let test_alu32 () =
  let t name expect items = check_i64 name expect (eval items) in
  t "add32 wraps at 2^32" 0L Asm.[ movi32 r0 (-1); addi32 r0 1; exit_ ];
  t "mov32 zero-extends" 0xFFFFFFFFL Asm.[ movi32 r0 (-1); exit_ ];
  t "add32 keeps low bits" 5L
    Asm.[ lddw r0 0xFFFFFFFF00000004L; addi32 r0 1; exit_ ]

let test_div_by_zero_faults () =
  check_bool "div by zero reg" true
    (match eval Asm.[ movi r0 5; movi r1 0; div r0 r1; exit_ ] with
    | exception Vm.Error _ -> true
    | _ -> false);
  check_bool "mod by zero reg" true
    (match eval Asm.[ movi r0 5; movi r1 0; mod_ r0 r1; exit_ ] with
    | exception Vm.Error _ -> true
    | _ -> false)

let test_endian () =
  let t name expect items = check_i64 name expect (eval items) in
  t "be16" 0x3412L Asm.[ movi r0 0x1234; be16 r0; exit_ ];
  t "be32" 0x78563412L Asm.[ movi r0 0x12345678; be32 r0; exit_ ];
  t "be64" 0xEFCDAB8967452301L
    Asm.[ lddw r0 0x0123456789ABCDEFL; be64 r0; exit_ ];
  t "le16 truncates" 0x1234L Asm.[ lddw r0 0xFFFF1234L; le16 r0; exit_ ];
  t "le32 truncates" 0x12345678L Asm.[ lddw r0 0xFF12345678L; le32 r0; exit_ ]

(* ALU property: interpreter agrees with an Int64 reference model *)
let alu_model op a b =
  let open Int64 in
  match (op : Insn.alu_op) with
  | Add -> Some (add a b)
  | Sub -> Some (sub a b)
  | Mul -> Some (mul a b)
  | Div -> if b = 0L then None else Some (unsigned_div a b)
  | Mod -> if b = 0L then None else Some (unsigned_rem a b)
  | Or -> Some (logor a b)
  | And -> Some (logand a b)
  | Xor -> Some (logxor a b)
  | Lsh -> Some (shift_left a (to_int b land 63))
  | Rsh -> Some (shift_right_logical a (to_int b land 63))
  | Arsh -> Some (shift_right a (to_int b land 63))
  | Mov -> Some b
  | Neg -> Some (neg a)

let prop_alu64_model =
  let open QCheck2 in
  Test.make ~count:1000 ~name:"alu64 matches Int64 model"
    Gen.(
      triple
        (oneofl
           [
             Insn.Add; Sub; Mul; Div; Or; And; Lsh; Rsh; Mod; Xor; Mov; Arsh;
           ])
        (map Int64.of_int int) (map Int64.of_int int))
    (fun (op, a, b) ->
      match alu_model op a b with
      | None -> true
      | Some expect ->
        let prog =
          [
            Insn.Lddw (R0, a);
            Insn.Lddw (R1, b);
            Insn.Alu (W64bit, op, R0, Reg R1);
            Insn.Exit;
          ]
        in
        let vm = Vm.create ~helpers:[] prog in
        Vm.run vm = expect)

(* --- jumps --- *)

let test_cond_jumps () =
  let jump_taken cond a b =
    let prog =
      [
        Insn.Lddw (R1, a);
        Insn.Lddw (R2, b);
        Insn.Alu (W64bit, Mov, R0, Imm 0l);
        Insn.Jcond (W64bit, cond, R1, Reg R2, 1);
        Insn.Ja 1;
        Insn.Alu (W64bit, Mov, R0, Imm 1l);
        Insn.Exit;
      ]
    in
    Vm.run (Vm.create ~helpers:[] prog) = 1L
  in
  check_bool "jeq taken" true (jump_taken Insn.Eq 5L 5L);
  check_bool "jeq not taken" false (jump_taken Insn.Eq 5L 6L);
  check_bool "jgt unsigned: -1 > 1" true (jump_taken Insn.Gt (-1L) 1L);
  check_bool "jsgt signed: -1 < 1" false (jump_taken Insn.Sgt (-1L) 1L);
  check_bool "jlt unsigned" true (jump_taken Insn.Lt 1L (-1L));
  check_bool "jslt signed" true (jump_taken Insn.Slt (-1L) 1L);
  check_bool "jset" true (jump_taken Insn.Set 6L 2L);
  check_bool "jset clear" false (jump_taken Insn.Set 4L 2L);
  check_bool "jge equal" true (jump_taken Insn.Ge 5L 5L);
  check_bool "jle equal" true (jump_taken Insn.Le 5L 5L);
  check_bool "jsge" true (jump_taken Insn.Sge 1L (-1L));
  check_bool "jsle" true (jump_taken Insn.Sle (-1L) 1L);
  check_bool "jne" true (jump_taken Insn.Ne 1L 2L)

let test_jmp32 () =
  let prog =
    [
      Insn.Lddw (R1, 0xFFFFFFFF00000005L);
      Insn.Alu (W64bit, Mov, R0, Imm 0l);
      Insn.Jcond (W32bit, Eq, R1, Imm 5l, 1);
      Insn.Ja 1;
      Insn.Alu (W64bit, Mov, R0, Imm 1l);
      Insn.Exit;
    ]
  in
  check_i64 "jeq32 low word" 1L (Vm.run (Vm.create ~helpers:[] prog))

(* --- memory --- *)

let test_stack_load_store () =
  let v =
    eval
      Asm.
        [
          movi r1 0x1234;
          stxh Insn.R10 (-2) r1;
          ldxh r0 Insn.R10 (-2);
          exit_;
        ]
  in
  check_i64 "stack roundtrip u16" 0x1234L v;
  let v =
    eval
      Asm.
        [
          lddw r1 0x1122334455667788L;
          stxdw Insn.R10 (-8) r1;
          ldxb r0 Insn.R10 (-8);
          exit_;
        ]
  in
  check_i64 "little-endian memory" 0x88L v

let test_memory_faults () =
  let faults items =
    match eval items with exception Vm.Error _ -> true | _ -> false
  in
  check_bool "load below stack" true
    (faults Asm.[ ldxw r0 Insn.R10 (-600); exit_ ]);
  check_bool "load above stack top" true
    (faults Asm.[ ldxw r0 Insn.R10 0; exit_ ]);
  check_bool "load straddling stack top" true
    (faults Asm.[ ldxw r0 Insn.R10 (-2); exit_ ]);
  check_bool "store out of range" true
    (faults Asm.[ movi r1 0; stxw r1 0 r1; exit_ ]);
  check_bool "unknown helper" true (faults Asm.[ call 999; exit_ ])

let test_read_only_region () =
  let mem = Memory.create () in
  let _ =
    Memory.add_region mem ~name:"ro" ~base:0x5000L ~writable:false
      (Bytes.of_string "abcd")
  in
  let prog =
    Asm.(assemble [ lddw r1 0x5000L; stb r1 0 7; movi r0 0; exit_ ])
  in
  let vm = Vm.create ~mem ~helpers:[] prog in
  check_bool "write to read-only faults" true
    (match Vm.run vm with exception Vm.Error _ -> true | _ -> false);
  let mem2 = Memory.create () in
  let _ =
    Memory.add_region mem2 ~name:"ro" ~base:0x5000L ~writable:false
      (Bytes.of_string "abcd")
  in
  let prog2 = Asm.(assemble [ lddw r1 0x5000L; ldxb r0 r1 1; exit_ ]) in
  check_i64 "read from read-only ok"
    (Int64.of_int (Char.code 'b'))
    (Vm.run (Vm.create ~mem:mem2 ~helpers:[] prog2))

let test_region_overlap_rejected () =
  let mem = Memory.create () in
  let _ =
    Memory.add_region mem ~name:"a" ~base:0x100L ~writable:true
      (Bytes.create 16)
  in
  check_bool "overlap rejected" true
    (match
       Memory.add_region mem ~name:"b" ~base:0x108L ~writable:true
         (Bytes.create 16)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_read_cstring () =
  let mem = Memory.create () in
  let _ =
    Memory.add_region mem ~name:"s" ~base:0x100L ~writable:false
      (Bytes.of_string "hello\x00world")
  in
  check Alcotest.string "cstring" "hello" (Memory.read_cstring mem 0x100L)

(* --- budget and helpers --- *)

let test_budget_exhaustion () =
  let prog = Asm.(assemble [ label "x"; ja "x"; exit_ ]) in
  let vm = Vm.create ~budget:1000 ~helpers:[] prog in
  check_bool "infinite loop stopped" true
    (match Vm.run vm with exception Vm.Error _ -> true | _ -> false);
  check_bool "executed roughly budget" true (Vm.executed vm >= 999)

let test_helper_args_and_result () =
  let seen = ref [] in
  let helpers =
    [
      ( 7,
        fun _ args ->
          seen := Array.to_list args;
          99L );
    ]
  in
  let v =
    eval ~helpers
      Asm.
        [
          movi r1 11;
          movi r2 22;
          movi Insn.R3 33;
          movi Insn.R4 44;
          movi Insn.R5 55;
          call 7;
          exit_;
        ]
  in
  check_i64 "helper result in r0" 99L v;
  check_bool "helper saw r1..r5" true (!seen = [ 11L; 22L; 33L; 44L; 55L ])

let test_vm_reuse_zeroes_regs () =
  let prog = Asm.(assemble [ mov r0 r1; exit_ ]) in
  let vm = Vm.create ~helpers:[] prog in
  Vm.set_reg vm r1 42L;
  check_i64 "run sees 0 (regs zeroed on entry)" 0L (Vm.run vm)

(* --- compiled engines --- *)

let outcome engine prog =
  let vm = Vm.create ~budget:10_000 ~engine ~helpers:[ (7, fun _ a -> Int64.add a.(0) 1L) ] prog in
  match Vm.run vm with v -> Ok v | exception Vm.Error _ -> Error ()

let prop_engines_agree =
  QCheck2.Test.make ~count:500
    ~name:"every engine = interpreter (result or fault)"
    QCheck2.Gen.(list_size (int_range 1 40) gen_insn)
    (fun prog ->
      let base = outcome Vm.Interpreted prog in
      List.for_all (fun e -> outcome e prog = base) Vm.all_engines)

(* The verifier is the single gate: a rejected program is refused at VMM
   registration on every engine (nothing ever executes it), and an
   accepted program runs to the same outcome on every engine. *)
let prop_verifier_single_gate =
  QCheck2.Test.make ~count:300 ~name:"verifier gates all engines identically"
    QCheck2.Gen.(list_size (int_range 1 40) gen_insn)
    (fun prog ->
      match Verifier.check prog with
      | Error _ ->
        List.for_all
          (fun e ->
            let vmm = Xbgp.Vmm.create ~engine:e ~host:"test" () in
            let xp = Xbgp.Xprog.v ~name:"gate" [ ("main", prog) ] in
            match Xbgp.Vmm.register vmm xp with
            | Error _ -> (Xbgp.Vmm.stats vmm).runs = 0
            | Ok () -> false)
          Vm.all_engines
      | Ok () ->
        let base = outcome Vm.Interpreted prog in
        List.for_all (fun e -> outcome e prog = base) Vm.all_engines)

let test_compiled_smoke () =
  let prog =
    Asm.(
      assemble
        [
          movi r0 0;
          movi r1 100;
          label "top";
          addi r0 7;
          subi r1 1;
          jnei r1 0 "top";
          exit_;
        ])
  in
  let vm = Vm.create ~engine:Vm.Compiled ~helpers:[] prog in
  check_i64 "compiled loop" 700L (Vm.run vm);
  check_bool "engine reported" true (Vm.engine vm = Vm.Compiled);
  (* reusable like the interpreter *)
  check_i64 "second run" 700L (Vm.run vm)

let test_compiled_budget_and_faults () =
  let spin = Asm.(assemble [ label "x"; ja "x"; exit_ ]) in
  let vm = Vm.create ~engine:Vm.Compiled ~budget:1000 ~helpers:[] spin in
  check_bool "budget stops compiled loop" true
    (match Vm.run vm with exception Vm.Error _ -> true | _ -> false);
  let oob = Asm.(assemble [ ldxw r0 Insn.R10 0; exit_ ]) in
  let vm = Vm.create ~engine:Vm.Compiled ~helpers:[] oob in
  check_bool "compiled memory fault" true
    (match Vm.run vm with exception Vm.Error _ -> true | _ -> false)

let test_compiled_full_programs () =
  (* every registered xBGP bytecode compiles on both compiled engines *)
  List.iter
    (fun (p : Xbgp.Xprog.t) ->
      List.iter
        (fun (_, code) ->
          ignore (Vm.create ~engine:Vm.Compiled ~helpers:[] code);
          ignore (Vm.create ~engine:Vm.Block ~helpers:[] code))
        p.bytecodes)
    Xprogs.Registry.all

(* --- block-compiled engine --- *)

let test_block_smoke () =
  let prog =
    Asm.(
      assemble
        [
          movi r0 0;
          movi r1 100;
          label "top";
          addi r0 7;
          subi r1 1;
          jnei r1 0 "top";
          exit_;
        ])
  in
  let vm = Vm.create ~engine:Vm.Block ~helpers:[] prog in
  check_i64 "block loop" 700L (Vm.run vm);
  check_bool "engine reported" true (Vm.engine vm = Vm.Block);
  check_i64 "second run" 700L (Vm.run vm)

let test_block_retired_matches_interpreter () =
  (* per-block budget charging must not change the retired-instruction
     count on successful runs *)
  let prog =
    Asm.(
      assemble
        [
          movi r0 0;
          movi r1 10;
          label "top";
          addi r0 3;
          subi r1 1;
          jnei r1 0 "top";
          exit_;
        ])
  in
  let run engine =
    let vm = Vm.create ~engine ~helpers:[] prog in
    let v = Vm.run vm in
    (v, Vm.executed vm)
  in
  let vi, ei = run Vm.Interpreted in
  let vb, eb = run Vm.Block in
  check_i64 "same result" vi vb;
  check Alcotest.int "same retired count" ei eb

let test_block_budget_fallback () =
  (* a budget that dies mid-block: the block engine must fall back to
     per-instruction interpretation and exhaust at the interpreter's
     exact point *)
  let prog =
    Asm.(assemble [ movi r0 1; movi r1 2; movi r2 3; movi Insn.R3 4; exit_ ])
  in
  let run engine =
    let vm = Vm.create ~engine ~budget:2 ~helpers:[] prog in
    let r = match Vm.run vm with v -> Ok v | exception Vm.Error e -> Error e in
    (r, Vm.executed vm)
  in
  let ri, ei = run Vm.Interpreted in
  let rb, eb = run Vm.Block in
  check_bool "both exhaust" true (ri = rb && Result.is_error ri);
  check Alcotest.int "fallback retires like the interpreter" ei eb;
  (* and an infinite loop still hits the budget *)
  let spin = Asm.(assemble [ label "x"; ja "x"; exit_ ]) in
  let vm = Vm.create ~engine:Vm.Block ~budget:1000 ~helpers:[] spin in
  check_bool "budget stops block loop" true
    (match Vm.run vm with exception Vm.Error _ -> true | _ -> false)

let test_block_fusions () =
  (* exercise each fusion pattern and the static stack fast path against
     the interpreter *)
  let progs =
    [
      (* ldx+alu fusion and the r10 stack fast path *)
      Asm.
        [
          movi r1 0x1234;
          stxh Insn.R10 (-2) r1;
          ldxh r0 Insn.R10 (-2);
          addi r0 1;
          exit_;
        ];
      (* mov-imm burst feeding a helper call *)
      Asm.[ movi r1 41; movi r2 1; call 7; exit_ ];
      (* trailing alu fused into the branch *)
      Asm.
        [
          movi r0 0;
          movi r1 5;
          label "top";
          addi r0 2;
          subi r1 1;
          jnei r1 0 "top";
          exit_;
        ];
      (* st-imm through r10, read back *)
      Asm.[ sth Insn.R10 (-4) 0xBEE; ldxh r0 Insn.R10 (-4); exit_ ];
    ]
  in
  List.iteri
    (fun i items ->
      let prog = Asm.assemble items in
      check_bool
        (Printf.sprintf "fusion prog %d agrees" i)
        true
        (outcome Vm.Interpreted prog = outcome Vm.Block prog
        && Result.is_ok (outcome Vm.Block prog)))
    progs

let test_block_faults () =
  let oob = Asm.(assemble [ ldxw r0 Insn.R10 0; exit_ ]) in
  let vm = Vm.create ~engine:Vm.Block ~helpers:[] oob in
  check_bool "block memory fault" true
    (match Vm.run vm with exception Vm.Error _ -> true | _ -> false);
  (* statically out-of-stack r10 offset goes through the generic path
     and faults like the interpreter *)
  let below = Asm.(assemble [ ldxw r0 Insn.R10 (-600); exit_ ]) in
  check_bool "below stack" true
    (outcome Vm.Interpreted below = outcome Vm.Block below);
  let unknown = Asm.(assemble [ call 999; exit_ ]) in
  check_bool "unknown helper" true
    (outcome Vm.Interpreted unknown = outcome Vm.Block unknown)

let test_block_entry_offset () =
  (* a non-leader entry point falls back to the interpreter *)
  let prog =
    Asm.(assemble [ movi r0 1; movi r1 9; mov r0 r1; exit_ ])
  in
  let run engine entry =
    let vm = Vm.create ~engine ~helpers:[] prog in
    Vm.run ~entry vm
  in
  List.iter
    (fun entry ->
      check_i64
        (Printf.sprintf "entry %d" entry)
        (run Vm.Interpreted entry) (run Vm.Block entry))
    [ 0; 1; 2 ]

(* --- verifier --- *)

let rejected ?allowed_helpers prog =
  match Verifier.check ?allowed_helpers prog with
  | Ok () -> false
  | Error _ -> true

let test_verifier () =
  check_bool "empty program" true (rejected []);
  check_bool "fall off end" true
    (rejected [ Insn.Alu (W64bit, Mov, R0, Imm 0l) ]);
  check_bool "jump out of range" true (rejected [ Insn.Ja 5; Insn.Exit ]);
  check_bool "jump into lddw" true
    (rejected [ Insn.Ja 1; Insn.Lddw (R0, 0L); Insn.Exit ]);
  check_bool "write to r10" true
    (rejected [ Insn.Alu (W64bit, Mov, R10, Imm 0l); Insn.Exit ]);
  check_bool "div by zero imm" true
    (rejected [ Insn.Alu (W64bit, Div, R0, Imm 0l); Insn.Exit ]);
  check_bool "helper not whitelisted" true
    (rejected ~allowed_helpers:[ 1 ] [ Insn.Call 2; Insn.Exit ]);
  check_bool "whitelisted helper ok" false
    (rejected ~allowed_helpers:[ 2 ] [ Insn.Call 2; Insn.Exit ]);
  check_bool "conditional at end" true
    (rejected [ Insn.Jcond (W64bit, Eq, R0, Imm 0l, -1) ]);
  check_bool "valid program accepted" false
    (rejected [ Insn.Alu (W64bit, Mov, R0, Imm 0l); Insn.Exit ])

let test_verifier_unreachable () =
  check_bool "code after exit" true
    (rejected
       [
         Insn.Alu (W64bit, Mov, R0, Imm 0l);
         Insn.Exit;
         Insn.Alu (W64bit, Mov, R0, Imm 1l);
         Insn.Exit;
       ]);
  check_bool "code skipped by ja" true
    (rejected [ Insn.Ja 1; Insn.Alu (W64bit, Mov, R0, Imm 0l); Insn.Exit ]);
  check_bool "exit after unconditional self-loop" true
    (rejected [ Insn.Ja (-1); Insn.Exit ]);
  (* both branches of a conditional count as reachable *)
  check_bool "jcond fall-through reachable" false
    (rejected
       [
         Insn.Alu (W64bit, Mov, R0, Imm 0l);
         Insn.Jcond (W64bit, Eq, R0, Imm 0l, 1);
         Insn.Alu (W64bit, Mov, R0, Imm 1l);
         Insn.Exit;
       ]);
  (* a backward conditional loop whose fall-through exits is legal:
     termination is the budget's job, not the verifier's *)
  check_bool "conditional self-loop accepted" false
    (rejected
       [
         Insn.Alu (W64bit, Mov, R1, Imm 0l);
         Insn.Jcond (W64bit, Eq, R1, Imm 0l, -1);
         Insn.Exit;
       ])

let test_verifier_size_limit () =
  let prog n =
    List.init n (fun _ -> Insn.Alu (Insn.W64bit, Insn.Mov, R0, Insn.Imm 0l))
    @ [ Insn.Exit ]
  in
  (* [Verifier.max_insns] counts slots, and Exit takes one *)
  check_bool "at the limit accepted" false (rejected (prog (Verifier.max_insns - 1)));
  check_bool "one over the limit rejected" true
    (rejected (prog Verifier.max_insns))

let test_verifier_accepts_all_registered () =
  List.iter
    (fun (p : Xbgp.Xprog.t) ->
      List.iter
        (fun (name, code) ->
          match Verifier.check ?allowed_helpers:p.allowed_helpers code with
          | Ok () -> ()
          | Error es ->
            Alcotest.failf "%s/%s rejected: %s" p.name name
              (Fmt.str "%a" (Fmt.list Verifier.pp_error) es))
        p.bytecodes)
    Xprogs.Registry.all

(* --- disassembler --- *)

let test_disasm_text () =
  let text =
    Disasm.program_to_string
      [
        Insn.Alu (W64bit, Mov, R1, Imm 5l);
        Insn.Ldx (W32, R0, R1, 4);
        Insn.Exit;
      ]
  in
  check_bool "mentions mov" true (contains text "mov r1, 5");
  check_bool "mentions ldxw" true (contains text "ldxw r0, [r1+4]");
  check_bool "mentions exit" true (contains text "exit")

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "ebpf"
    [
      ( "insn",
        [
          Alcotest.test_case "golden encodings" `Quick test_encode_golden;
          Alcotest.test_case "lddw two slots" `Quick test_lddw_two_slots;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          qc prop_codec_roundtrip;
          qc prop_decode_never_crashes;
        ] );
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "lddw offsets" `Quick test_asm_lddw_label_offsets;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          qc prop_encode_stable;
        ] );
      ( "vm",
        [
          Alcotest.test_case "alu64" `Quick test_alu64;
          Alcotest.test_case "alu32" `Quick test_alu32;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
          Alcotest.test_case "endian" `Quick test_endian;
          Alcotest.test_case "cond jumps" `Quick test_cond_jumps;
          Alcotest.test_case "jmp32" `Quick test_jmp32;
          Alcotest.test_case "stack" `Quick test_stack_load_store;
          Alcotest.test_case "memory faults" `Quick test_memory_faults;
          Alcotest.test_case "read-only region" `Quick test_read_only_region;
          Alcotest.test_case "region overlap" `Quick
            test_region_overlap_rejected;
          Alcotest.test_case "cstring" `Quick test_read_cstring;
          Alcotest.test_case "budget" `Quick test_budget_exhaustion;
          Alcotest.test_case "helper args" `Quick test_helper_args_and_result;
          Alcotest.test_case "reuse zeroes regs" `Quick
            test_vm_reuse_zeroes_regs;
          qc prop_alu64_model;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "smoke" `Quick test_compiled_smoke;
          Alcotest.test_case "budget and faults" `Quick
            test_compiled_budget_and_faults;
          Alcotest.test_case "all registered bytecodes compile" `Quick
            test_compiled_full_programs;
          qc prop_engines_agree;
          qc prop_verifier_single_gate;
        ] );
      ( "block",
        [
          Alcotest.test_case "smoke" `Quick test_block_smoke;
          Alcotest.test_case "retired count" `Quick
            test_block_retired_matches_interpreter;
          Alcotest.test_case "budget fallback" `Quick test_block_budget_fallback;
          Alcotest.test_case "fusions" `Quick test_block_fusions;
          Alcotest.test_case "faults" `Quick test_block_faults;
          Alcotest.test_case "entry offset" `Quick test_block_entry_offset;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "structural checks" `Quick test_verifier;
          Alcotest.test_case "unreachable code" `Quick
            test_verifier_unreachable;
          Alcotest.test_case "size limit" `Quick test_verifier_size_limit;
          Alcotest.test_case "all registered programs verify" `Quick
            test_verifier_accepts_all_registered;
        ] );
      ( "disasm",
        [ Alcotest.test_case "text output" `Quick test_disasm_text ] );
    ]
