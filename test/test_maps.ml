(* Model-based tests for the map subsystem (lib/ebpf/map.ml).

   Each map kind is driven with random operation sequences — including
   wrong-size keys and values — against a trivially-correct pure model;
   every operation's result and the final canonical dump must agree.
   Deterministic tests pin the corners the models glide over: exact LRU
   eviction/recency order, per-peer-array bounds, spec validation, and
   (through the VMM) the no-aliasing rule between map storage and the
   ephemeral bytes a lookup returns. *)

module Map = Ebpf.Map
module Qc = QCheck_alcotest

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let le32 n =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

(* --- the models ------------------------------------------------------ *)

(* Hash and LRU share one model: an association list kept in recency
   order (most recent first). A plain hash map simply never consults
   recency; the LRU evicts the list's tail. *)
module Model = struct
  type t = {
    spec : Map.spec;
    mutable entries : (string * string) list;  (** most recent first *)
  }

  let create spec = { spec; entries = [] }

  let sized m k v =
    String.length k = m.spec.Map.key_size
    && String.length v = m.spec.Map.value_size

  let touch m k v =
    m.entries <- (k, v) :: List.remove_assoc k m.entries

  let lookup m k =
    if String.length k <> m.spec.Map.key_size then None
    else
      match List.assoc_opt k m.entries with
      | Some v ->
        (* LRU lookups refresh recency; harmless for plain hash *)
        if m.spec.Map.kind = Map.Lru then touch m k v;
        Some v
      | None -> None

  let update m k v =
    if not (sized m k v) then false
    else if List.mem_assoc k m.entries then (touch m k v; true)
    else if List.length m.entries < m.spec.Map.max_entries then (
      touch m k v;
      true)
    else
      match m.spec.Map.kind with
      | Map.Hash -> false
      | Map.Lru ->
        (* evict the least recently used entry, then insert *)
        m.entries <-
          (k, v)
          :: List.filteri
               (fun i _ -> i < List.length m.entries - 1)
               m.entries;
        true
      | Map.Per_peer_array -> assert false

  let delete m k =
    let had = List.mem_assoc k m.entries in
    m.entries <- List.remove_assoc k m.entries;
    had && String.length k = m.spec.Map.key_size

  let dump m = List.sort compare m.entries
end

module Array_model = struct
  type t = { spec : Map.spec; slots : string array }

  let create (spec : Map.spec) =
    { spec; slots = Array.make spec.max_entries (String.make spec.value_size '\x00') }

  let index m k =
    if String.length k <> 4 then None
    else
      let i =
        Char.code k.[0]
        lor (Char.code k.[1] lsl 8)
        lor (Char.code k.[2] lsl 16)
        lor (Char.code k.[3] lsl 24)
      in
      if i >= 0 && i < m.spec.Map.max_entries then Some i else None

  let zero m = String.make m.spec.Map.value_size '\x00'

  let lookup m k =
    Option.map (fun i -> m.slots.(i)) (index m k)

  let update m k v =
    match index m k with
    | Some i when String.length v = m.spec.Map.value_size ->
      m.slots.(i) <- v;
      true
    | _ -> false

  let delete m k =
    match index m k with
    | Some i when m.slots.(i) <> zero m ->
      m.slots.(i) <- zero m;
      true
    | _ -> false

  let dump m =
    Array.to_list m.slots
    |> List.mapi (fun i v -> (le32 i, v))
    |> List.filter (fun (_, v) -> v <> zero m)
    |> List.sort compare
end

(* --- random operation sequences -------------------------------------- *)

type op = Lookup of string | Update of string * string | Delete of string

let pp_op = function
  | Lookup k -> Printf.sprintf "lookup %S" k
  | Update (k, v) -> Printf.sprintf "update %S %S" k v
  | Delete k -> Printf.sprintf "delete %S" k

(* Keys mostly valid (small pool, so collisions and refreshes happen) with
   the occasional wrong-size key; same shape for values. *)
let gen_ops ~key_size ~value_size =
  let open QCheck2.Gen in
  let key =
    frequency
      [
        (8, map (fun i -> String.make key_size (Char.chr (65 + i))) (int_bound 7));
        (1, return (String.make (key_size + 1) 'X'));
        (1, return "");
      ]
  in
  let value =
    frequency
      [
        (8, map (fun i -> String.make value_size (Char.chr (97 + i))) (int_bound 7));
        (1, return (String.make (value_size - 1) 'y'));
      ]
  in
  let op =
    frequency
      [
        (3, map (fun k -> Lookup k) key);
        (4, map2 (fun k v -> Update (k, v)) key value);
        (2, map (fun k -> Delete k) key);
      ]
  in
  list_size (int_range 1 120) op

let agree_prop ~kind ~key_size ~value_size ~max_entries model_of lookup update
    delete dump =
  let spec =
    {
      Map.name = "m";
      kind;
      key_size;
      value_size;
      max_entries;
      shared = false;
    }
  in
  QCheck2.Test.make ~count:300
    ~name:(Printf.sprintf "%s map matches its model" (Map.kind_name kind))
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    (gen_ops ~key_size ~value_size)
    (fun ops ->
      let real = Map.create spec and model = model_of spec in
      List.for_all
        (fun op ->
          match op with
          | Lookup k -> Map.lookup real k = lookup model k
          | Update (k, v) -> Map.update real k v = update model k v
          | Delete k -> Map.delete real k = delete model k)
        ops
      && Map.dump real = dump model
      && Map.length real = List.length (dump model))

let prop_hash_model =
  agree_prop ~kind:Map.Hash ~key_size:4 ~value_size:6 ~max_entries:5
    Model.create Model.lookup Model.update Model.delete Model.dump

let prop_lru_model =
  agree_prop ~kind:Map.Lru ~key_size:4 ~value_size:6 ~max_entries:5
    Model.create Model.lookup Model.update Model.delete Model.dump

let prop_array_model =
  agree_prop ~kind:Map.Per_peer_array ~key_size:4 ~value_size:6 ~max_entries:8
    Array_model.create Array_model.lookup Array_model.update
    Array_model.delete Array_model.dump

(* --- deterministic corners ------------------------------------------- *)

let spec ?(kind = Map.Hash) ?(key_size = 4) ?(value_size = 4)
    ?(max_entries = 4) () =
  { Map.name = "m"; kind; key_size; value_size; max_entries; shared = false }

let test_validation () =
  let bad s = check_bool (Format.asprintf "%a" Map.pp_spec s) true
      (Result.is_error (Map.validate s))
  in
  bad (spec ~key_size:0 ());
  bad (spec ~key_size:(Map.max_key_size + 1) ());
  bad (spec ~value_size:0 ());
  bad (spec ~value_size:(Map.max_value_size + 1) ());
  bad (spec ~max_entries:0 ());
  bad (spec ~max_entries:(Map.max_max_entries + 1) ());
  bad (spec ~kind:Map.Per_peer_array ~key_size:8 ());
  check_bool "valid spec accepted" true (Result.is_ok (Map.validate (spec ())));
  match Map.create (spec ~key_size:0 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "create accepted an invalid spec"

let test_lru_order () =
  let m = Map.create (spec ~kind:Map.Lru ~max_entries:3 ()) in
  let k i = le32 i and v i = le32 (100 + i) in
  check_bool "insert 1" true (Map.update m (k 1) (v 1));
  check_bool "insert 2" true (Map.update m (k 2) (v 2));
  check_bool "insert 3" true (Map.update m (k 3) (v 3));
  (* recency now 1 < 2 < 3; a lookup refreshes 1, an update refreshes 2 *)
  check_bool "touch 1" true (Map.lookup m (k 1) <> None);
  check_bool "re-update 2" true (Map.update m (k 2) (v 22));
  (* 3 is now the least recently used: the next insert evicts it *)
  check_bool "insert 4 evicts" true (Map.update m (k 4) (v 4));
  check_bool "3 evicted" true (Map.lookup m (k 3) = None);
  check_bool "1 survives" true (Map.lookup m (k 1) = Some (v 1));
  check_bool "2 survives" true (Map.lookup m (k 2) = Some (v 22));
  check_int "evictions counted" 1 (Map.stats m).Map.evictions;
  check_int "still full" 3 (Map.length m)

let test_array_bounds () =
  let m = Map.create (spec ~kind:Map.Per_peer_array ~max_entries:4 ()) in
  check_bool "in-range slot exists" true
    (Map.lookup m (le32 3) = Some "\x00\x00\x00\x00");
  check_bool "oob lookup is None" true (Map.lookup m (le32 4) = None);
  check_bool "oob update fails" false (Map.update m (le32 99) "abcd");
  check_bool "short key is None" true (Map.lookup m "\x01" = None);
  check_bool "delete of zero slot fails" false (Map.delete m (le32 0));
  check_bool "update in range" true (Map.update m (le32 0) "abcd");
  check_int "one live slot" 1 (Map.length m);
  check_bool "delete zeroes" true (Map.delete m (le32 0));
  check_bool "slot back to zero" true
    (Map.lookup m (le32 0) = Some "\x00\x00\x00\x00");
  check_int "no live slots" 0 (Map.length m)

(* The ephemeral-memory rule: a lookup hands the bytecode a copy of the
   value in per-run heap memory. Scribbling on that copy must not change
   the map, and the map must survive into the next dispatch while the
   scribbled heap does not. *)
let test_lookup_no_aliasing () =
  let prog =
    (* NB: Asm.le32 (the byteswap) shadows our le32 helper, hence the
       local open *)
    let open Ebpf.Asm in
    assemble
      [
        (* update m[1] = 42 only when the slot is still empty, so run 2
           observes run 1's value, not its own *)
        stw R10 (-4) 1;
        movi R1 0;
        mov R2 R10;
        addi R2 (-4);
        call Xbgp.Api.h_map_lookup;
        jnei R0 0 "have";
        stdw R10 (-16) 42;
        movi R1 0;
        mov R2 R10;
        addi R2 (-4);
        mov R3 R10;
        addi R3 (-16);
        call Xbgp.Api.h_map_update;
        label "have";
        stw R10 (-4) 1;
        movi R1 0;
        mov R2 R10;
        addi R2 (-4);
        call Xbgp.Api.h_map_lookup;
        jeqi R0 0 "bad";
        mov R6 R0;
        ldxdw R7 R6 0;
        (* scribble on the returned ephemeral copy... *)
        stdw R6 0 999;
        (* ...and look the key up again: the map must be unchanged *)
        stw R10 (-4) 1;
        movi R1 0;
        mov R2 R10;
        addi R2 (-4);
        call Xbgp.Api.h_map_lookup;
        jeqi R0 0 "bad";
        ldxdw R0 R0 0;
        exit_;
        label "bad";
        movi R0 (-1);
        exit_;
      ]
  in
  let xp =
    Xbgp.Xprog.v ~name:"alias"
      ~maps:[ Xbgp.Xprog.map ~name:"m" ~key_size:4 ~value_size:8 () ]
      [ ("main", prog) ]
  in
  let vmm = Xbgp.Vmm.create ~budget:10_000 ~host:"test" () in
  (match Xbgp.Vmm.register vmm xp with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Xbgp.Vmm.attach vmm ~program:"alias" ~bytecode:"main"
       ~point:Xbgp.Api.Bgp_inbound_filter ~order:0
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let run () =
    Xbgp.Vmm.run vmm Xbgp.Api.Bgp_inbound_filter ~ops:Xbgp.Host_intf.null_ops
      ~args:
        (Xbgp.Host_intf.Args.of_list
           [ (Xbgp.Api.arg_prefix, Bytes.make 5 '\x00') ])
      ~default:(fun () -> 0L)
  in
  Alcotest.(check int64) "first run sees its own write" 42L (run ());
  (* the map survives the dispatch; the scribbled heap did not *)
  Alcotest.(check int64) "second run sees the map, not the scribble" 42L
    (run ());
  check_int "no faults" 0 (Xbgp.Vmm.stats vmm).faults;
  match Xbgp.Vmm.map_dump vmm ~program:"alias" with
  | Some [ ("m", [ (k, v) ]) ] ->
    check_bool "key is 1 LE" true (k = le32 1);
    check_bool "value is 42 LE, not the scribble" true
      (v = "\x2a\x00\x00\x00\x00\x00\x00\x00")
  | _ -> Alcotest.fail "unexpected map dump"

let test_dump_canonical () =
  let m = Map.create (spec ~max_entries:8 ()) in
  List.iter
    (fun i -> check_bool "insert" true (Map.update m (le32 i) (le32 (i * 7))))
    [ 5; 1; 3; 2 ];
  let d = Map.dump m in
  check_bool "sorted by key bytes" true (d = List.sort compare d);
  check_int "all entries present" 4 (List.length d);
  Map.clear m;
  check_int "clear empties" 0 (Map.length m);
  check_int "stats survive clear" 4 (Map.stats m).Map.updates

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "maps"
    [
      ( "model",
        [ qc prop_hash_model; qc prop_lru_model; qc prop_array_model ] );
      ( "corners",
        [
          Alcotest.test_case "spec validation" `Quick test_validation;
          Alcotest.test_case "lru recency order" `Quick test_lru_order;
          Alcotest.test_case "array bounds" `Quick test_array_bounds;
          Alcotest.test_case "lookup no aliasing" `Quick
            test_lookup_no_aliasing;
          Alcotest.test_case "canonical dump" `Quick test_dump_canonical;
        ] );
    ]
